/**
 * @file
 * Cross-module integration tests: the README quickstart flow, the
 * classifyDatabase study, custom catalogues, config-file round trips
 * through the evaluator, and multi-mode consistency.
 */

#include <gtest/gtest.h>

#include "core/acs.hh"

namespace acs {
namespace {

TEST(Integration, ReadmeQuickstartFlow)
{
    core::SanctionsStudy study;
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.memBandwidth = 3.2 * units::TBPS;
    cfg.devicePhyCount = 8; // 400 GB/s

    const core::DesignReport r =
        study.evaluateDesign(cfg, core::gpt3Workload());
    EXPECT_LT(r.tbtDelta(), -0.15); // unregulated HBM pays off
    EXPECT_EQ(r.rules.oct2022,
              policy::Classification::NOT_APPLICABLE);
    EXPECT_TRUE(policy::isRegulated(r.rules.oct2023DataCenter));
}

TEST(Integration, ClassifyDatabaseMatchesPaperHeadlines)
{
    const auto summary =
        core::SanctionsStudy::classifyDatabase(devices::Database{});
    EXPECT_EQ(summary.devices, 65u);
    EXPECT_EQ(summary.regulatedOct2022, 4u);
    EXPECT_GT(summary.regulatedOct2023, summary.regulatedOct2022);
    EXPECT_EQ(summary.marketing.falseDc, 4);
    EXPECT_EQ(summary.marketing.falseNonDc, 7);
    EXPECT_EQ(summary.architectural.falseNonDc, 0);
}

TEST(Integration, CustomCatalogue)
{
    devices::DeviceRecord rec;
    rec.name = "Hypothetical X1";
    rec.vendor = devices::Vendor::NVIDIA;
    rec.releaseYear = 2024;
    rec.releaseMonth = 6;
    rec.market = policy::MarketSegment::DATA_CENTER;
    rec.tpp = 3000.0;
    rec.deviceBandwidthGBps = 450.0;
    rec.dieAreaMm2 = 700.0;
    rec.memCapacityGB = 64.0;
    rec.memBandwidthGBps = 2400.0;

    const devices::Database db({rec});
    EXPECT_EQ(db.size(), 1u);
    const auto summary = core::SanctionsStudy::classifyDatabase(db);
    EXPECT_EQ(summary.devices, 1u);
    // PD 4.29 at 3000 TPP -> NAC tier.
    EXPECT_EQ(summary.regulatedOct2023, 1u);
    EXPECT_EQ(summary.regulatedOct2022, 0u);

    devices::DeviceRecord bad = rec;
    bad.dieAreaMm2 = 0.0;
    EXPECT_THROW(devices::Database({bad}), FatalError);
}

TEST(Integration, ConfigFileRoundTripThroughEvaluator)
{
    // Serialize a design, reload it, and verify the evaluator sees
    // the identical device.
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.name = "file-design";
    cfg.memBandwidth = 2.8 * units::TBPS;
    const hw::HardwareConfig reloaded = hw::configFromKeyVal(
        KeyVal::parse(hw::toKeyVal(cfg).serialize()));

    const core::SanctionsStudy study;
    const core::Workload w = core::llamaWorkload();
    const auto a = study.evaluateDesign(cfg, w);
    const auto b = study.evaluateDesign(reloaded, w);
    EXPECT_DOUBLE_EQ(a.design.ttftS, b.design.ttftS);
    EXPECT_DOUBLE_EQ(a.design.tbtS, b.design.tbtS);
    EXPECT_DOUBLE_EQ(a.design.dieAreaMm2, b.design.dieAreaMm2);
}

TEST(Integration, AnalyticAndDetailedModesAgreeOnOrderings)
{
    // The DSE conclusions must not depend on the GEMM mode: the
    // relative ordering of a fast and a slow design is preserved.
    perf::PerfParams detailed;
    detailed.gemmMode = perf::GemmMode::TILE_SIM;
    const core::SanctionsStudy analytic;
    const core::SanctionsStudy sim(detailed);
    const core::Workload w = core::gpt3Workload();

    hw::HardwareConfig slow = hw::modeledA100();
    slow.coreCount = 64;
    const auto a_fast = analytic.evaluateBaseline(w);
    const auto a_slow = analytic.evaluateDesign(slow, w).design;
    const auto s_fast = sim.evaluateBaseline(w);
    const auto s_slow = sim.evaluateDesign(slow, w).design;
    EXPECT_LT(a_fast.ttftS, a_slow.ttftS);
    EXPECT_LT(s_fast.ttftS, s_slow.ttftS);
}

TEST(Integration, EndToEndPolicyStory)
{
    // The paper's whole arc in one test: (1) Oct-2022 leaves a
    // compliant design that beats the A100 on decode; (2) Oct-2023
    // closes the prefill route; (3) the architecture-first memory
    // bandwidth ceiling closes the decode route too.
    const core::SanctionsStudy study;
    const core::Workload w = core::gpt3Workload();
    const auto baseline = study.evaluateBaseline(w);

    // (1)
    const auto oct22 = dse::filterReticle(study.runSweep(
        dse::table3Space(4800.0, {600.0 * units::GBPS}), w));
    EXPECT_LT(dse::minTbt(oct22).tbtS, baseline.tbtS * 0.8);

    // (2)
    const auto oct23 = dse::filterOct2023Unregulated(
        dse::filterReticle(study.runSweep(
            dse::table3Space(2400.0, {500.0 * units::GBPS,
                                      700.0 * units::GBPS,
                                      900.0 * units::GBPS}),
            w)));
    ASSERT_FALSE(oct23.empty());
    EXPECT_GT(dse::minTtft(oct23).ttftS, baseline.ttftS * 1.5);

    // (3) — the Table 5 space contains 0.8 TB/s designs the combined
    // policy admits; none of them can beat the A100's decode.
    const auto policy = policy::ArchPolicy::tppPlusMemoryBandwidth();
    std::vector<dse::EvaluatedDesign> under_policy;
    for (const auto &d : dse::filterReticle(
             study.runSweep(dse::table5Space(), w))) {
        if (policy.compliant(d.config))
            under_policy.push_back(d);
    }
    ASSERT_FALSE(under_policy.empty());
    EXPECT_GT(dse::minTbt(under_policy).tbtS, baseline.tbtS);
}

} // anonymous namespace
} // namespace acs
