/**
 * @file
 * Cross-validation of the wave-level GEMM simulator against the
 * closed-form MatmulModel: the two implement the same tiling policy
 * and physics, so their latencies must agree within a tolerance on
 * both prefill- and decode-shaped GEMMs.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/presets.hh"
#include "perf/matmul_model.hh"
#include "perf/tile_sim.hh"

namespace acs {
namespace perf {
namespace {

model::Op
weightGemm(long m, long n, long k, long batch = 1)
{
    model::Op op;
    op.name = "gemm";
    op.kind = model::OpKind::MATMUL;
    op.mm = {m, n, k, batch, true};
    op.flops = 2.0 * static_cast<double>(batch) * m * n * k;
    op.weightBytes = 2.0 * static_cast<double>(batch) * k * n;
    op.inputBytes = 2.0 * static_cast<double>(batch) * m * k;
    op.outputBytes = 2.0 * static_cast<double>(batch) * m * n;
    return op;
}

TEST(TileSim, RejectsNonMatmul)
{
    model::Op op;
    op.kind = model::OpKind::VECTOR;
    EXPECT_THROW(simulateGemm(hw::modeledA100(), op), FatalError);
}

TEST(TileSim, WaveAccountingIsExact)
{
    const auto op = weightGemm(2048, 4096, 4096);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    const long m_tiles = (2048 + trace.tileM - 1) / trace.tileM;
    const long n_tiles = (4096 + trace.tileN - 1) / trace.tileN;
    EXPECT_EQ(trace.totalTiles(), m_tiles * n_tiles);
    // Every wave except possibly the last is full.
    const long arrays = hw::modeledA100().totalSystolicArrays();
    for (std::size_t i = 0; i + 1 < trace.waves.size(); ++i)
        EXPECT_EQ(trace.waves[i].tilesInWave, arrays);
}

TEST(TileSim, ScheduleIsCausal)
{
    const auto op = weightGemm(8192, 8192, 4096);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    double prev_end = 0.0;
    for (const WaveRecord &w : trace.waves) {
        EXPECT_GE(w.startS, 0.0);
        EXPECT_GE(w.endS, w.startS);
        EXPECT_GE(w.endS, prev_end); // compute is serialized
        prev_end = w.endS;
    }
    EXPECT_GE(trace.totalS, prev_end);
}

TEST(TileSim, SharesTilingPolicyWithClosedForm)
{
    const auto op = weightGemm(32, 12288, 12288);
    const MatmulModel model(hw::modeledA100(), PerfParams{});
    const MatmulTiming analytic = model.time(op);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    EXPECT_EQ(trace.tileM, analytic.tileM);
    EXPECT_EQ(trace.tileN, analytic.tileN);
}

/**
 * The cross-validation property: simulated and closed-form latency
 * agree within 35% across GEMM shapes (the simulator sees remainder
 * tiles and schedule skew the closed form averages away).
 */
struct GemmShape
{
    const char *label;
    long m, n, k, batch;
};

class CrossValidate : public ::testing::TestWithParam<GemmShape>
{};

TEST_P(CrossValidate, SimAgreesWithClosedForm)
{
    const auto [label, m, n, k, batch] = GetParam();
    const auto op = weightGemm(m, n, k, batch);
    const MatmulModel model(hw::modeledA100(), PerfParams{});
    const double analytic = model.time(op).totalS;
    const double simulated =
        simulateGemm(hw::modeledA100(), op).totalS;
    EXPECT_GT(simulated, 0.35 * analytic) << label;
    EXPECT_LT(simulated, 1.65 * analytic) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossValidate,
    ::testing::Values(
        GemmShape{"prefill_qkv", 65536, 9216, 12288, 1},
        GemmShape{"prefill_ffn", 65536, 12288, 12288, 1},
        GemmShape{"decode_qkv", 32, 9216, 12288, 1},
        GemmShape{"decode_ffn", 32, 12288, 12288, 1},
        GemmShape{"square", 4096, 4096, 4096, 1},
        GemmShape{"tall", 65536, 512, 2048, 1},
        GemmShape{"wide", 512, 65536, 2048, 1}),
    [](const auto &info) { return std::string(info.param.label); });

TEST(TileSim, MoreMemoryBandwidthNeverHurts)
{
    hw::HardwareConfig slow = hw::modeledA100();
    slow.memBandwidth = 0.8e12;
    const auto op = weightGemm(32, 12288, 12288);
    const double t_slow = simulateGemm(slow, op).totalS;
    const double t_fast =
        simulateGemm(hw::modeledA100(), op).totalS;
    EXPECT_LE(t_fast, t_slow * (1.0 + 1e-9));
}

TEST(TileSim, RemainderTilesAppearOnEdges)
{
    // 100 x 100 with 64-ish tiles leaves remainders on both axes.
    const auto op = weightGemm(100, 100, 512);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    EXPECT_GT(trace.totalTiles(), 0);
    EXPECT_LE(trace.tileM, 100);
    EXPECT_LE(trace.tileN, 100);
}

TEST(TileSim, SingleTileProblem)
{
    const auto op = weightGemm(8, 16, 64);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    EXPECT_EQ(trace.totalTiles(), 1);
    EXPECT_EQ(trace.waves.size(), 1u);
    EXPECT_GT(trace.totalS, 0.0);
}

TEST(TileSim, RemainderEdgeWaveScheduling)
{
    // Remainders on BOTH axes at once, batched, with a short final
    // wave: 209 x 353 tiles at 64 give a 4 x 6 grid per batch item
    // (m % 64 = 17, n % 64 = 33), 480 jobs over 432 arrays — one full
    // wave plus a 48-tile partial.
    const auto op = weightGemm(209, 353, 512, 20);
    const hw::HardwareConfig cfg = hw::modeledA100();
    const GemmTrace trace = simulateGemm(cfg, op);

    ASSERT_GT(trace.tileM, 0);
    EXPECT_NE(209 % trace.tileM, 0);
    EXPECT_NE(353 % trace.tileN, 0);
    const long m_tiles = (209 + trace.tileM - 1) / trace.tileM;
    const long n_tiles = (353 + trace.tileN - 1) / trace.tileN;
    EXPECT_EQ(trace.totalTiles(), 20 * m_tiles * n_tiles);

    const long arrays = cfg.totalSystolicArrays();
    ASSERT_EQ(trace.waves.size(),
              static_cast<std::size_t>(
                  (trace.totalTiles() + arrays - 1) / arrays));
    long scheduled = 0;
    for (std::size_t w = 0; w < trace.waves.size(); ++w) {
        const WaveRecord &rec = trace.waves[w];
        if (w + 1 < trace.waves.size()) {
            EXPECT_EQ(rec.tilesInWave, arrays) << w;
        }
        scheduled += rec.tilesInWave;
    }
    EXPECT_EQ(scheduled, trace.totalTiles());
    // The final wave is partial here.
    EXPECT_LT(trace.waves.back().tilesInWave, arrays);

    // And the aggregated engine matches the legacy walk on it.
    PerfParams legacy;
    legacy.tileSimEngine = TileSimEngine::LEGACY_WALK;
    const GemmTrace ref = simulateGemm(cfg, op, legacy);
    ASSERT_EQ(ref.waves.size(), trace.waves.size());
    EXPECT_EQ(ref.totalS, trace.totalS);
    for (std::size_t w = 0; w < trace.waves.size(); ++w) {
        EXPECT_EQ(ref.waves[w].tilesInWave,
                  trace.waves[w].tilesInWave) << w;
        EXPECT_EQ(ref.waves[w].computeS, trace.waves[w].computeS) << w;
        EXPECT_EQ(ref.waves[w].endS, trace.waves[w].endS) << w;
    }
}

TEST(TileSim, ComputeTimeNeverRisesAcrossWaves)
{
    // Jobs are issued row-major, so later waves only ever swap
    // interior tiles for edge tiles (same or shorter compute). The
    // shape puts 3 m-edge tiles alone in the last wave: its computeS
    // must strictly drop.
    const auto op = weightGemm(6545, 1313, 2048);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    ASSERT_GE(trace.waves.size(), 2u);
    for (std::size_t w = 1; w < trace.waves.size(); ++w)
        EXPECT_LE(trace.waves[w].computeS,
                  trace.waves[w - 1].computeS) << w;
    EXPECT_LT(trace.waves.back().computeS, trace.waves[0].computeS);
}

TEST(TileSim, UniformWavesShareOneSignature)
{
    // A 1x1 tile grid divides the array count, so every full wave is
    // identical — the aggregated engine reuses one signature and the
    // records must come out equal.
    const auto op = weightGemm(16, 16, 1024, 1000);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    ASSERT_GE(trace.waves.size(), 2u);
    const WaveRecord &a = trace.waves[0];
    const WaveRecord &b = trace.waves[1];
    EXPECT_EQ(a.tilesInWave, b.tilesInWave);
    EXPECT_EQ(a.computeS, b.computeS);
    EXPECT_EQ(a.globalBufS, b.globalBufS);
    EXPECT_EQ(a.hbmS, b.hbmS);
}

TEST(TileSim, SummaryMatchesTraceBitwise)
{
    const auto op = weightGemm(209, 353, 512, 20);
    for (const TileSimEngine engine :
         {TileSimEngine::AGGREGATED, TileSimEngine::LEGACY_WALK}) {
        PerfParams params;
        params.tileSimEngine = engine;
        const GemmTrace trace =
            simulateGemm(hw::modeledA100(), op, params);
        const GemmSummary summary =
            simulateGemmSummary(hw::modeledA100(), op, params);
        EXPECT_EQ(summary.tileM, trace.tileM);
        EXPECT_EQ(summary.tileN, trace.tileN);
        EXPECT_EQ(summary.waves,
                  static_cast<long>(trace.waves.size()));
        EXPECT_EQ(summary.totalTiles, trace.totalTiles());
        EXPECT_EQ(summary.totalS, trace.totalS);
    }
}

} // anonymous namespace
} // namespace perf
} // namespace acs
