/**
 * @file
 * Cross-validation of the wave-level GEMM simulator against the
 * closed-form MatmulModel: the two implement the same tiling policy
 * and physics, so their latencies must agree within a tolerance on
 * both prefill- and decode-shaped GEMMs.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/presets.hh"
#include "perf/matmul_model.hh"
#include "perf/tile_sim.hh"

namespace acs {
namespace perf {
namespace {

model::Op
weightGemm(long m, long n, long k, long batch = 1)
{
    model::Op op;
    op.name = "gemm";
    op.kind = model::OpKind::MATMUL;
    op.mm = {m, n, k, batch, true};
    op.flops = 2.0 * static_cast<double>(batch) * m * n * k;
    op.weightBytes = 2.0 * static_cast<double>(batch) * k * n;
    op.inputBytes = 2.0 * static_cast<double>(batch) * m * k;
    op.outputBytes = 2.0 * static_cast<double>(batch) * m * n;
    return op;
}

TEST(TileSim, RejectsNonMatmul)
{
    model::Op op;
    op.kind = model::OpKind::VECTOR;
    EXPECT_THROW(simulateGemm(hw::modeledA100(), op), FatalError);
}

TEST(TileSim, WaveAccountingIsExact)
{
    const auto op = weightGemm(2048, 4096, 4096);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    const long m_tiles = (2048 + trace.tileM - 1) / trace.tileM;
    const long n_tiles = (4096 + trace.tileN - 1) / trace.tileN;
    EXPECT_EQ(trace.totalTiles(), m_tiles * n_tiles);
    // Every wave except possibly the last is full.
    const long arrays = hw::modeledA100().totalSystolicArrays();
    for (std::size_t i = 0; i + 1 < trace.waves.size(); ++i)
        EXPECT_EQ(trace.waves[i].tilesInWave, arrays);
}

TEST(TileSim, ScheduleIsCausal)
{
    const auto op = weightGemm(8192, 8192, 4096);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    double prev_end = 0.0;
    for (const WaveRecord &w : trace.waves) {
        EXPECT_GE(w.startS, 0.0);
        EXPECT_GE(w.endS, w.startS);
        EXPECT_GE(w.endS, prev_end); // compute is serialized
        prev_end = w.endS;
    }
    EXPECT_GE(trace.totalS, prev_end);
}

TEST(TileSim, SharesTilingPolicyWithClosedForm)
{
    const auto op = weightGemm(32, 12288, 12288);
    const MatmulModel model(hw::modeledA100(), PerfParams{});
    const MatmulTiming analytic = model.time(op);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    EXPECT_EQ(trace.tileM, analytic.tileM);
    EXPECT_EQ(trace.tileN, analytic.tileN);
}

/**
 * The cross-validation property: simulated and closed-form latency
 * agree within 35% across GEMM shapes (the simulator sees remainder
 * tiles and schedule skew the closed form averages away).
 */
struct GemmShape
{
    const char *label;
    long m, n, k, batch;
};

class CrossValidate : public ::testing::TestWithParam<GemmShape>
{};

TEST_P(CrossValidate, SimAgreesWithClosedForm)
{
    const auto [label, m, n, k, batch] = GetParam();
    const auto op = weightGemm(m, n, k, batch);
    const MatmulModel model(hw::modeledA100(), PerfParams{});
    const double analytic = model.time(op).totalS;
    const double simulated =
        simulateGemm(hw::modeledA100(), op).totalS;
    EXPECT_GT(simulated, 0.35 * analytic) << label;
    EXPECT_LT(simulated, 1.65 * analytic) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossValidate,
    ::testing::Values(
        GemmShape{"prefill_qkv", 65536, 9216, 12288, 1},
        GemmShape{"prefill_ffn", 65536, 12288, 12288, 1},
        GemmShape{"decode_qkv", 32, 9216, 12288, 1},
        GemmShape{"decode_ffn", 32, 12288, 12288, 1},
        GemmShape{"square", 4096, 4096, 4096, 1},
        GemmShape{"tall", 65536, 512, 2048, 1},
        GemmShape{"wide", 512, 65536, 2048, 1}),
    [](const auto &info) { return std::string(info.param.label); });

TEST(TileSim, MoreMemoryBandwidthNeverHurts)
{
    hw::HardwareConfig slow = hw::modeledA100();
    slow.memBandwidth = 0.8e12;
    const auto op = weightGemm(32, 12288, 12288);
    const double t_slow = simulateGemm(slow, op).totalS;
    const double t_fast =
        simulateGemm(hw::modeledA100(), op).totalS;
    EXPECT_LE(t_fast, t_slow * (1.0 + 1e-9));
}

TEST(TileSim, RemainderTilesAppearOnEdges)
{
    // 100 x 100 with 64-ish tiles leaves remainders on both axes.
    const auto op = weightGemm(100, 100, 512);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    EXPECT_GT(trace.totalTiles(), 0);
    EXPECT_LE(trace.tileM, 100);
    EXPECT_LE(trace.tileN, 100);
}

TEST(TileSim, SingleTileProblem)
{
    const auto op = weightGemm(8, 16, 64);
    const GemmTrace trace = simulateGemm(hw::modeledA100(), op);
    EXPECT_EQ(trace.totalTiles(), 1);
    EXPECT_EQ(trace.waves.size(), 1u);
    EXPECT_GT(trace.totalS, 0.0);
}

} // anonymous namespace
} // namespace perf
} // namespace acs
