/**
 * @file
 * Unit, property, and determinism tests for the request-level serving
 * simulator (acs::sim) and the percentile capacity API on top of it.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/study.hh"
#include "hw/presets.hh"
#include "model/transformer.hh"
#include "serve/capacity.hh"
#include "serve/percentile.hh"
#include "sim/event.hh"
#include "sim/fleet.hh"
#include "sim/replica.hh"

namespace acs {
namespace sim {
namespace {

// ---- event queue -----------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.push(3.0, EventKind::ARRIVAL, 3);
    q.push(1.0, EventKind::ITER_DONE, 1);
    q.push(2.0, EventKind::CLIENT_WAKE, 2);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 2u);
    EXPECT_EQ(q.pop().payload, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    for (std::uint64_t i = 0; i < 16; ++i)
        q.push(1.0, EventKind::ARRIVAL, i);
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, Validation)
{
    EventQueue q;
    EXPECT_THROW(q.pop(), PanicError);
    EXPECT_THROW(q.peek(), PanicError);
    EXPECT_THROW(q.push(-1.0, EventKind::ARRIVAL), PanicError);
    EXPECT_THROW(q.push(std::nan(""), EventKind::ARRIVAL),
                 PanicError);
}

TEST(EventQueue, PanicMessagesNameTheOffendingValue)
{
    EventQueue q;
    try {
        q.push(-2.5, EventKind::ARRIVAL);
        FAIL() << "push accepted a negative time";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("-2.5"),
                  std::string::npos)
            << e.what();
    }
    try {
        q.push(std::nan(""), EventKind::ARRIVAL);
        FAIL() << "push accepted a NaN time";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("NaN"),
                  std::string::npos)
            << e.what();
    }
}

/**
 * The calendar engine's contract: bit-identical pop order to the
 * reference heap for any schedule. Randomized interleaved push/pop
 * with duplicate times, near-future clusters, and far-future
 * outliers (the think-time shape that forces the one-lap scan into
 * its global-minimum fallback), plus mid-stream reserve() calls that
 * force re-bucketing.
 */
TEST(EventQueue, CalendarMatchesHeapOnRandomSchedules)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        EventQueue cal(QueueEngine::CALENDAR);
        EventQueue heap(QueueEngine::LEGACY_HEAP);
        Rng rng(seed);
        double now = 0.0;
        std::uint64_t payload = 0;
        for (int step = 0; step < 4000; ++step) {
            const double action = rng.uniform();
            if (action < 0.6 || cal.empty()) {
                const double shape = rng.uniform();
                double when = now;
                if (shape < 0.2) {
                    // exact duplicate of the current time (FIFO ties)
                } else if (shape < 0.3) {
                    when = now + 1e9 * rng.uniform(); // outlier
                } else {
                    when = now + rng.uniform();
                }
                const auto kind = static_cast<EventKind>(
                    rng.below(3)); // ARRIVAL..CLIENT_WAKE
                cal.push(when, kind, payload);
                heap.push(when, kind, payload);
                ++payload;
            } else {
                const Event a = cal.pop();
                const Event b = heap.pop();
                ASSERT_EQ(a.timeS, b.timeS);
                ASSERT_EQ(a.seq, b.seq);
                ASSERT_EQ(a.kind, b.kind);
                ASSERT_EQ(a.payload, b.payload);
                now = a.timeS;
            }
            if (step % 512 == 0)
                cal.reserve(cal.size() + 64); // force a rebuild
        }
        ASSERT_EQ(cal.size(), heap.size());
        while (!cal.empty()) {
            const Event a = cal.pop();
            const Event b = heap.pop();
            ASSERT_EQ(a.timeS, b.timeS);
            ASSERT_EQ(a.seq, b.seq);
        }
        EXPECT_TRUE(heap.empty());
    }
}

TEST(EventQueue, ReserveKeepsContentsAndOrder)
{
    EventQueue q;
    for (std::uint64_t i = 0; i < 32; ++i)
        q.push(32.0 - static_cast<double>(i), EventKind::ARRIVAL, i);
    q.reserve(1024); // rebuild with 32 events pending
    EXPECT_EQ(q.size(), 32u);
    double last = 0.0;
    while (!q.empty()) {
        const Event e = q.pop();
        EXPECT_GT(e.timeS, last);
        last = e.timeS;
    }
}

// ---- workload --------------------------------------------------------------

TEST(Workload, FixedLengthQuantizes)
{
    const auto d = LengthDistribution::fixed(100);
    Rng rng(1);
    EXPECT_EQ(d.sample(rng), 100);

    auto q = d;
    q.quantum = 64;
    EXPECT_EQ(q.sample(rng), 128);
    EXPECT_EQ(q.maxPossibleLen(), 128);
}

TEST(Workload, UniformStaysInQuantizedBounds)
{
    const auto d = LengthDistribution::uniform(100, 400, 32);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int len = d.sample(rng);
        EXPECT_GE(len, 100);
        EXPECT_LE(len, d.maxPossibleLen());
        EXPECT_EQ(len % 32, 0);
    }
    EXPECT_DOUBLE_EQ(d.meanLen(), 250.0);
}

TEST(Workload, Validation)
{
    EXPECT_THROW(LengthDistribution::fixed(0), FatalError);
    EXPECT_THROW(LengthDistribution::uniform(5, 4), FatalError);
    WorkloadSpec w;
    w.arrivalRatePerS = 0.0;
    EXPECT_THROW(w.validate(), FatalError);
    w = WorkloadSpec{};
    w.horizonS = 0.0;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, SubstreamSeedsDiffer)
{
    const std::uint64_t a = substreamSeed(1, 0);
    const std::uint64_t b = substreamSeed(1, 1);
    const std::uint64_t c = substreamSeed(2, 0);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, substreamSeed(1, 0));
}

TEST(Workload, ExponentialGapsMatchRate)
{
    Rng rng(42);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += sampleExponentialS(rng, 4.0);
    // Mean gap of a rate-4 process is 0.25 s; 20k samples pin it
    // within a few percent.
    EXPECT_NEAR(total / n, 0.25, 0.01);
}

// ---- shared fixtures -------------------------------------------------------

/** Llama-8B at TP=4 keeps every simulator call cheap. */
core::Workload
testWorkload()
{
    core::Workload w = core::llamaWorkload();
    w.setting.batch = 1;
    w.setting.inputLen = 512;
    w.setting.outputLen = 64;
    return w;
}

IterationCostModel
testCost(const core::Workload &w,
         const hw::HardwareConfig &cfg = hw::modeledA100())
{
    return IterationCostModel(cfg, w.model, w.setting, w.system);
}

// ---- cost model ------------------------------------------------------------

TEST(CostModel, MemoizesLookups)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const double a = cost.prefillS(2, 512);
    const double b = cost.decodeStepS(8);
    const std::size_t misses = cost.memoMisses();
    EXPECT_EQ(misses, 2u);
    EXPECT_DOUBLE_EQ(cost.prefillS(2, 512), a);
    EXPECT_DOUBLE_EQ(cost.decodeStepS(8), b);
    EXPECT_EQ(cost.memoMisses(), misses);
}

TEST(CostModel, MatchesInferenceSimulatorExactly)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const perf::InferenceSimulator sim(hw::modeledA100());
    const auto result = sim.run(w.model, w.setting, w.system);
    EXPECT_DOUBLE_EQ(cost.prefillS(w.setting.batch,
                                   w.setting.inputLen),
                     result.ttftFullModelS);
    EXPECT_DOUBLE_EQ(cost.decodeStepS(w.setting.batch),
                     result.tbtFullModelS);
}

TEST(CostModel, LatencyGrowsWithBatchAndLength)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    EXPECT_LT(cost.prefillS(1, 512), cost.prefillS(8, 512));
    EXPECT_LT(cost.prefillS(1, 512), cost.prefillS(1, 2048));
    EXPECT_LT(cost.decodeStepS(1), cost.decodeStepS(32));
}

TEST(CostModel, FlatMemoMatchesLegacyMapBitExactly)
{
    const core::Workload w = testWorkload();
    const IterationCostModel flat = testCost(w); // FLAT default
    const IterationCostModel legacy(hw::modeledA100(), w.model,
                                    w.setting, w.system,
                                    perf::PerfParams{},
                                    MemoEngine::LEGACY_MAP);
    Rng rng(99);
    for (int i = 0; i < 120; ++i) {
        const int batch = 1 + static_cast<int>(rng.below(8));
        const int len =
            64 * (1 + static_cast<int>(rng.below(8)));
        // Exact equality: both engines memoize the identical
        // computed bits, hit or miss.
        EXPECT_EQ(flat.prefillS(batch, len),
                  legacy.prefillS(batch, len));
        EXPECT_EQ(flat.decodeStepS(batch),
                  legacy.decodeStepS(batch));
    }
    EXPECT_EQ(flat.memoMisses(), legacy.memoMisses());
}

/**
 * The shared read-mostly memo contract the TSan job watches: many
 * workers hammering one FLAT cost model concurrently (claim races,
 * pending-sentinel reads, idempotent re-stores) must each observe
 * exactly the bits a fresh single-threaded model computes.
 */
TEST(CostModel, SharedMemoThreadFanout)
{
    const core::Workload w = testWorkload();
    const IterationCostModel shared = testCost(w);
    const IterationCostModel reference = testCost(w);
    constexpr int kTasks = 64;
    std::vector<double> prefill(kTasks), decode(kTasks);
    common::ThreadPool pool(7);
    pool.parallelFor(
        kTasks,
        [&](std::size_t i) {
            const int batch = 1 + static_cast<int>(i % 8);
            const int len = 128 * (1 + static_cast<int>(i % 4));
            prefill[i] = shared.prefillS(batch, len);
            decode[i] = shared.decodeStepS(batch);
        },
        1);
    for (int i = 0; i < kTasks; ++i) {
        const int batch = 1 + (i % 8);
        const int len = 128 * (1 + (i % 4));
        EXPECT_EQ(prefill[i], reference.prefillS(batch, len));
        EXPECT_EQ(decode[i], reference.decodeStepS(batch));
    }
}

TEST(CostModel, MemoryAccounting)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    EXPECT_GT(cost.weightBytesPerDevice(), 0.0);
    EXPECT_GT(cost.kvBytesPerTokenPerDevice(), 0.0);
    EXPECT_NEAR(cost.kvBudgetBytes(),
                hw::modeledA100().memCapacityBytes -
                    cost.weightBytesPerDevice(),
                1.0);
}

// ---- single-request pinning property (the analytical contract) -------------

/** One request, zero queueing: closed loop, one client, no repeat. */
ReplicaConfig
singleRequestConfig(const core::Workload &w)
{
    ReplicaConfig rc;
    rc.workload.closedLoopClients = 1;
    rc.workload.thinkTimeS = 1e9; // next wake falls past the horizon
    rc.workload.horizonS = 1.0;
    rc.workload.promptLen =
        LengthDistribution::fixed(w.setting.inputLen);
    rc.workload.outputLen =
        LengthDistribution::fixed(w.setting.outputLen);
    rc.workload.seed = 3;
    return rc;
}

TEST(Pinning, SingleRequestReproducesServingEstimate)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const ReplicaMetrics m =
        simulateReplica(cost, singleRequestConfig(w));

    ASSERT_EQ(m.requests.size(), 1u);
    const RequestRecord &r = m.requests.front();

    const perf::InferenceSimulator sim(hw::modeledA100());
    const auto estimate = serve::estimateServing(
        sim.run(w.model, w.setting, w.system),
        w.system.tensorParallel, serve::Slo{});

    // Zero queueing at batch 1: TTFT is exactly the analytical
    // full-model prefill latency.
    EXPECT_DOUBLE_EQ(r.ttftS(), estimate.ttftS);

    // Every decode iteration charges the analytical TBT, so the mean
    // gap matches within one iteration's float accumulation.
    EXPECT_NEAR(r.meanTbtS(), estimate.tbtS,
                estimate.tbtS * 1e-12);
    for (double gap : m.tbtGapsS)
        EXPECT_NEAR(gap, estimate.tbtS, estimate.tbtS * 1e-9);

    EXPECT_EQ(m.prefillIterations, 1u);
    EXPECT_EQ(m.decodeIterations,
              static_cast<std::uint64_t>(w.setting.outputLen - 1));
    EXPECT_EQ(m.generatedTokens,
              static_cast<std::uint64_t>(w.setting.outputLen));
}

// ---- replica behaviour -----------------------------------------------------

ReplicaConfig
openLoopConfig(double rate, std::uint64_t seed = 11,
               double horizon = 400.0)
{
    ReplicaConfig rc;
    rc.workload.arrivalRatePerS = rate;
    rc.workload.promptLen = LengthDistribution::uniform(256, 768, 64);
    rc.workload.outputLen = LengthDistribution::uniform(32, 96, 16);
    rc.workload.horizonS = horizon;
    rc.workload.seed = seed;
    return rc;
}

TEST(Replica, CompletesEveryArrival)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const ReplicaMetrics m =
        simulateReplica(cost, openLoopConfig(1.0));
    EXPECT_GT(m.arrivals, 0u);
    EXPECT_EQ(m.requests.size(), m.arrivals);
    std::uint64_t tokens = 0;
    for (const RequestRecord &r : m.requests) {
        tokens += r.outputLen;
        EXPECT_GE(r.admitS, r.arrivalS);
        EXPECT_GT(r.firstTokenS, r.admitS);
        EXPECT_GE(r.finishS, r.firstTokenS);
    }
    EXPECT_EQ(m.generatedTokens, tokens);
    EXPECT_GT(m.prefillIterations, 0u);
    EXPECT_GT(m.decodeIterations, 0u);
    EXPECT_EQ(m.queueDepth.samples,
              m.prefillIterations + m.decodeIterations);
}

TEST(Replica, ClosedLoopKeepsPopulationBounded)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    ReplicaConfig rc;
    rc.workload.closedLoopClients = 4;
    rc.workload.thinkTimeS = 1.0;
    rc.workload.promptLen = LengthDistribution::fixed(256);
    rc.workload.outputLen = LengthDistribution::fixed(32);
    rc.workload.horizonS = 200.0;
    rc.workload.seed = 5;
    const ReplicaMetrics m = simulateReplica(cost, rc);
    EXPECT_GE(m.arrivals, 4u);
    EXPECT_EQ(m.requests.size(), m.arrivals);
    // With 4 clients, the admission queue can never exceed 4.
    EXPECT_LE(m.queueDepth.maxDepth, 4u);
}

TEST(Replica, TailLatencyGrowsWithLoad)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    // Calibrate "heavy" to ~80% of the batched steady-state capacity:
    // stable (the run drains) but deep in the queueing regime.
    core::Workload batched = w;
    batched.setting.batch = 32;
    const perf::InferenceSimulator psim(hw::modeledA100());
    const auto estimate = serve::estimateServing(
        psim.run(batched.model, batched.setting, batched.system),
        batched.system.tensorParallel, serve::Slo{});
    const double capacityReqPerS = estimate.tokensPerSecondPerDevice *
                                   batched.system.tensorParallel / 64.0;

    const ReplicaMetrics light =
        simulateReplica(cost, openLoopConfig(0.2));
    const ReplicaMetrics heavy =
        simulateReplica(cost, openLoopConfig(0.8 * capacityReqPerS));
    ASSERT_GT(light.requests.size(), 10u);
    ASSERT_GT(heavy.requests.size(), 10u);
    EXPECT_GT(heavy.ttft().p99S, light.ttft().p99S);
    // Under load the p99 TTFT pulls away from the median (queueing),
    // which the steady-state model cannot represent at all.
    EXPECT_GT(heavy.ttft().p99S, 2.0 * heavy.ttft().p50S);
}

TEST(Replica, OversizedRequestIsFatal)
{
    const core::Workload w = testWorkload();
    hw::HardwareConfig tiny = hw::modeledA100();
    tiny.memCapacityBytes = 4.1e9; // weights fit, one request not
    const IterationCostModel cost = testCost(w, tiny);
    ReplicaConfig rc = openLoopConfig(0.2);
    rc.workload.promptLen = LengthDistribution::fixed(100000);
    EXPECT_THROW(simulateReplica(cost, rc), FatalError);
}

// ---- determinism -----------------------------------------------------------

/** Full-precision serialization: any bit difference shows up. */
std::string
fingerprint(const ReplicaMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << m.arrivals << '/' << m.prefillIterations << '/'
       << m.decodeIterations << '/' << m.generatedTokens << '/'
       << m.lastEventS << '\n';
    for (const RequestRecord &r : m.requests) {
        os << r.id << ',' << r.arrivalS << ',' << r.admitS << ','
           << r.firstTokenS << ',' << r.finishS << ',' << r.promptLen
           << ',' << r.outputLen << '\n';
    }
    for (double g : m.tbtGapsS)
        os << g << '\n';
    for (std::uint64_t b : m.queueDepth.buckets)
        os << b << ' ';
    return os.str();
}

TEST(Determinism, SameSeedSameBytes)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const std::string a =
        fingerprint(simulateReplica(cost, openLoopConfig(1.0, 9)));
    const std::string b =
        fingerprint(simulateReplica(cost, openLoopConfig(1.0, 9)));
    EXPECT_EQ(a, b);
    const std::string c =
        fingerprint(simulateReplica(cost, openLoopConfig(1.0, 10)));
    EXPECT_NE(a, c);
}

TEST(Determinism, QueueEngineDoesNotChangeReplicaBytes)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const ReplicaConfig cal = openLoopConfig(2.0, 19);
    ReplicaConfig heap = cal;
    heap.scheduler.queueEngine = QueueEngine::LEGACY_HEAP;
    EXPECT_EQ(fingerprint(simulateReplica(cost, cal)),
              fingerprint(simulateReplica(cost, heap)));
}

TEST(Determinism, MemoEngineDoesNotChangeReplicaBytes)
{
    const core::Workload w = testWorkload();
    const IterationCostModel flat = testCost(w);
    const IterationCostModel legacy(hw::modeledA100(), w.model,
                                    w.setting, w.system,
                                    perf::PerfParams{},
                                    MemoEngine::LEGACY_MAP);
    const ReplicaConfig rc = openLoopConfig(2.0, 23);
    EXPECT_EQ(fingerprint(simulateReplica(flat, rc)),
              fingerprint(simulateReplica(legacy, rc)));
}

TEST(Determinism, RecordingOffPreservesCountsAndHistograms)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const ReplicaConfig on = openLoopConfig(2.0, 29);
    ReplicaConfig off = on;
    off.recordRequests = false;
    off.recordTbtGaps = false;
    const ReplicaMetrics a = simulateReplica(cost, on);
    const ReplicaMetrics b = simulateReplica(cost, off);

    // The switches drop only the per-request vectors...
    EXPECT_FALSE(a.requests.empty());
    EXPECT_FALSE(a.tbtGapsS.empty());
    EXPECT_TRUE(b.requests.empty());
    EXPECT_TRUE(b.tbtGapsS.empty());

    // ...every counter and streaming histogram is unchanged.
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.completed, a.requests.size());
    EXPECT_EQ(a.prefillIterations, b.prefillIterations);
    EXPECT_EQ(a.decodeIterations, b.decodeIterations);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.lastEventS, b.lastEventS);
    EXPECT_EQ(a.ttftHist.buckets, b.ttftHist.buckets);
    EXPECT_EQ(a.ttftHist.count, b.ttftHist.count);
    EXPECT_DOUBLE_EQ(a.ttftHist.sumS, b.ttftHist.sumS);
    EXPECT_EQ(a.tbtHist.buckets, b.tbtHist.buckets);
    EXPECT_EQ(a.tbtHist.count, b.tbtHist.count);
    EXPECT_DOUBLE_EQ(a.tbtHist.maxS, b.tbtHist.maxS);

    // The histograms' percentiles track the exact rollups within
    // the documented ~1.6% bucket error.
    EXPECT_NEAR(b.ttftHist.percentileS(99.0), a.ttft().p99S,
                0.02 * a.ttft().p99S);
    EXPECT_NEAR(b.tbtHist.percentileS(99.0), a.tbt().p99S,
                0.02 * a.tbt().p99S);
}

/**
 * The unit the parallel scenario-grid benches fan out over: one
 * servingPointAt cell must be byte-identical across both queue
 * engines and both memo engines (the ext_serving_sim regression at
 * unit scale).
 */
TEST(Determinism, ServingPointIsEngineIndependent)
{
    const core::SanctionsStudy study;
    const core::Workload w = testWorkload();
    core::ServingStudyConfig cfg;
    cfg.promptLen = LengthDistribution::uniform(256, 768, 64);
    cfg.outputLen = LengthDistribution::uniform(32, 96, 16);
    cfg.horizonS = 150.0;
    cfg.seed = 77;
    core::ServingStudyConfig legacy_cfg = cfg;
    legacy_cfg.scheduler.queueEngine = QueueEngine::LEGACY_HEAP;

    const IterationCostModel flat =
        study.makeCostModel(hw::modeledA100(), w);
    const IterationCostModel map = study.makeCostModel(
        hw::modeledA100(), w, MemoEngine::LEGACY_MAP);

    const auto serialize = [](const core::ServingStudyPoint &p) {
        std::ostringstream os;
        os << std::setprecision(17);
        os << p.ratePerS << ',' << p.ttft.p50S << ',' << p.ttft.p99S
           << ',' << p.tbt.p50S << ',' << p.tbt.p99S << ','
           << p.attainment << ',' << p.goodputTokensPerS << ','
           << p.completed << ',' << p.maxQueueDepth;
        return os.str();
    };
    for (double rate : {0.5, 2.0}) {
        const std::string fast =
            serialize(core::servingPointAt(flat, cfg, rate));
        EXPECT_EQ(fast, serialize(core::servingPointAt(
                            map, legacy_cfg, rate)));
        EXPECT_EQ(fast, serialize(core::servingPointAt(
                            flat, legacy_cfg, rate)));
    }
}

TEST(Determinism, FleetMergeIsThreadCountIndependent)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    FleetDemand demand;
    demand.ratePerS = 2.0;
    demand.promptLen = LengthDistribution::uniform(256, 768, 64);
    demand.outputLen = LengthDistribution::uniform(32, 96, 16);
    demand.horizonS = 200.0;
    demand.seed = 21;
    const SchedulerConfig sched;

    common::ThreadPool narrow(1);
    common::ThreadPool wide(7);
    const std::string serial = fingerprint(
        simulateFleet(cost, demand, sched, 5, &narrow));
    const std::string pooled = fingerprint(
        simulateFleet(cost, demand, sched, 5, &wide));
    EXPECT_EQ(serial, pooled);

    // And both match a by-hand index-order merge.
    ReplicaMetrics manual;
    for (int i = 0; i < 5; ++i) {
        ReplicaConfig rc;
        rc.scheduler = sched;
        rc.workload.arrivalRatePerS = demand.ratePerS / 5;
        rc.workload.promptLen = demand.promptLen;
        rc.workload.outputLen = demand.outputLen;
        rc.workload.horizonS = demand.horizonS;
        rc.workload.seed = substreamSeed(demand.seed, i);
        if (i == 0)
            manual = simulateReplica(cost, rc);
        else
            manual.merge(simulateReplica(cost, rc));
    }
    EXPECT_EQ(serial, fingerprint(manual));
}

TEST(Determinism, ServingStudyIsByteReproducible)
{
    const core::SanctionsStudy study;
    core::ServingStudyConfig cfg;
    cfg.ratesPerS = {0.2, 1.0};
    cfg.promptLen = LengthDistribution::uniform(256, 768, 64);
    cfg.outputLen = LengthDistribution::uniform(32, 96, 16);
    cfg.horizonS = 150.0;
    cfg.seed = 77;
    const core::Workload w = testWorkload();

    const auto serialize = [](const core::ServingStudyResult &r) {
        std::ostringstream os;
        os << std::setprecision(17);
        for (const core::ServingStudyPoint &p : r.curve) {
            os << p.ratePerS << ',' << p.ttft.p50S << ','
               << p.ttft.p99S << ',' << p.tbt.p50S << ','
               << p.tbt.p99S << ',' << p.attainment << ','
               << p.goodputTokensPerS << ',' << p.completed << ','
               << p.maxQueueDepth << '\n';
        }
        return os.str();
    };
    const auto a =
        serialize(study.runServingStudy(hw::modeledA100(), w, cfg));
    const auto b =
        serialize(study.runServingStudy(hw::modeledA100(), w, cfg));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, RollupPercentilesOrdered)
{
    std::vector<double> samples;
    for (int i = 1; i <= 1000; ++i)
        samples.push_back(i / 1000.0);
    const LatencyRollup r = LatencyRollup::fromSamples(samples);
    EXPECT_EQ(r.count, 1000u);
    EXPECT_LE(r.p50S, r.p95S);
    EXPECT_LE(r.p95S, r.p99S);
    EXPECT_LE(r.p99S, r.maxS);
    EXPECT_NEAR(r.p50S, 0.5, 1e-3);
    EXPECT_DOUBLE_EQ(r.maxS, 1.0);
}

TEST(Metrics, AttainmentAndGoodput)
{
    ReplicaMetrics m;
    m.lastEventS = 10.0;
    RequestRecord fast;
    fast.arrivalS = 0.0;
    fast.firstTokenS = 1.0;
    fast.finishS = 2.0;
    fast.outputLen = 11; // mean TBT 0.1
    RequestRecord slow = fast;
    slow.firstTokenS = 8.0; // TTFT 8 misses the bound below
    slow.finishS = 9.0;
    m.requests = {fast, slow};

    SloTargets slo;
    slo.ttftMaxS = 4.0;
    slo.tbtMaxS = 0.2;
    EXPECT_DOUBLE_EQ(m.attainment(slo), 0.5);
    EXPECT_DOUBLE_EQ(m.goodputTokensPerS(slo), 1.1);

    EXPECT_THROW(
        [&] {
            SloTargets bad;
            bad.percentile = 0.0;
            bad.validate();
        }(),
        FatalError);
}

TEST(Metrics, QueueDepthBuckets)
{
    QueueDepthHistogram h;
    h.record(0);
    h.record(1);
    h.record(5);
    EXPECT_EQ(h.samples, 3u);
    EXPECT_EQ(h.maxDepth, 5u);
    ASSERT_GE(h.buckets.size(), 4u);
    EXPECT_EQ(h.buckets[0], 1u); // depth 0
    EXPECT_EQ(h.buckets[1], 1u); // depth 1
    EXPECT_EQ(h.buckets[3], 1u); // depth 4..7

    QueueDepthHistogram other;
    other.record(5);
    h.merge(other);
    EXPECT_EQ(h.buckets[3], 2u);
    EXPECT_EQ(h.samples, 4u);
}

// ---- fleet sizing vs the closed form ---------------------------------------

TEST(Fleet, LowLoadAgreesWithClosedForm)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    FleetDemand demand;
    demand.ratePerS = 0.05; // far below one replica's capacity
    demand.promptLen = LengthDistribution::fixed(512);
    demand.outputLen = LengthDistribution::fixed(64);
    demand.horizonS = 400.0;
    demand.seed = 31;

    serve::PercentileSlo slo;
    slo.ttftP99MaxS = 5.0;
    slo.tbtP99MaxS = 0.5;
    const serve::PercentileFleetPlan plan = serve::planFleetPercentile(
        cost, demand, SchedulerConfig{}, slo, 64);

    ASSERT_TRUE(plan.simulated.feasible);
    EXPECT_EQ(plan.simulated.devices, plan.closedFormDevices);
    EXPECT_EQ(plan.simulated.replicas, 1);
    EXPECT_DOUBLE_EQ(plan.burstFactor(), 1.0);
}

TEST(Fleet, BurstyLoadExceedsClosedForm)
{
    // Reference batch 32 so the closed-form path provisions to the
    // batched steady-state throughput — the regime where it and the
    // simulator should diverge on burstiness alone.
    core::Workload w = testWorkload();
    w.setting.batch = 32;
    const IterationCostModel cost = testCost(w);

    const perf::InferenceSimulator sim(hw::modeledA100());
    const auto estimate = serve::estimateServing(
        sim.run(w.model, w.setting, w.system),
        w.system.tensorParallel, serve::Slo{});
    const double unitTokensPerS = estimate.tokensPerSecondPerDevice *
                                  w.system.tensorParallel;

    FleetDemand demand;
    // 1.9 units' worth of tokens: steady-state arithmetic rounds up
    // to 2 replicas at ~95% utilization each — a load level where
    // Poisson queueing blows the p99 TTFT unless the simulator adds
    // capacity beyond the closed-form answer.
    demand.ratePerS = 1.9 * unitTokensPerS / 64.0;
    demand.promptLen = LengthDistribution::fixed(512);
    demand.outputLen = LengthDistribution::fixed(64);
    demand.horizonS = 400.0;
    demand.seed = 33;

    serve::PercentileSlo slo;
    slo.ttftP99MaxS = 2.0;
    slo.tbtP99MaxS = 0.25;
    const serve::PercentileFleetPlan plan = serve::planFleetPercentile(
        cost, demand, SchedulerConfig{}, slo, 256);

    ASSERT_TRUE(plan.simulated.feasible);
    ASSERT_GT(plan.closedFormDevices, 0);
    EXPECT_GT(plan.simulated.devices, plan.closedFormDevices);
    EXPECT_GT(plan.burstFactor(), 1.0);
    EXPECT_GE(plan.simulated.probes, 2);
}

TEST(Fleet, InfeasibleSloReported)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    FleetDemand demand;
    demand.ratePerS = 1.0;
    demand.promptLen = LengthDistribution::fixed(512);
    demand.outputLen = LengthDistribution::fixed(64);
    demand.horizonS = 100.0;
    demand.seed = 35;

    SloTargets slo;
    slo.ttftMaxS = 1e-6; // unreachable even with zero queueing
    slo.tbtMaxS = 1e-6;
    const FleetSizingResult r =
        sizeFleet(cost, demand, SchedulerConfig{}, slo, 4);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.replicas, 0);
}

TEST(Fleet, SizingReturnsCachedProbeIdenticalToResimulation)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    FleetDemand demand;
    demand.ratePerS = 3.0;
    demand.promptLen = LengthDistribution::uniform(256, 768, 64);
    demand.outputLen = LengthDistribution::uniform(32, 96, 16);
    demand.horizonS = 150.0;
    demand.seed = 13;

    SloTargets slo;
    slo.ttftMaxS = 5.0;
    slo.tbtMaxS = 0.200;
    const SchedulerConfig sched;
    const FleetSizingResult r =
        sizeFleet(cost, demand, sched, slo, 64);
    ASSERT_TRUE(r.feasible);

    // The search memoizes per-size verdicts, so the aggregate it
    // hands back must be the probe's own result — byte-identical to
    // simulating the chosen size from scratch.
    EXPECT_EQ(fingerprint(r.aggregate),
              fingerprint(
                  simulateFleet(cost, demand, sched, r.replicas)));
}

// ---- study curve -----------------------------------------------------------

TEST(ServingStudy, CurveShowsSaturation)
{
    const core::SanctionsStudy study;
    core::ServingStudyConfig cfg;
    cfg.ratesPerS = {0.2, 6.0};
    cfg.promptLen = LengthDistribution::fixed(512);
    cfg.outputLen = LengthDistribution::fixed(64);
    cfg.horizonS = 200.0;
    cfg.seed = 41;
    const core::ServingStudyResult r = study.runServingStudy(
        hw::modeledA100(), testWorkload(), cfg);
    ASSERT_EQ(r.curve.size(), 2u);
    EXPECT_FALSE(r.fleetSized);
    EXPECT_GT(r.curve[1].ttft.p99S, r.curve[0].ttft.p99S);
    EXPECT_GT(r.curve[0].attainment, 0.0);
}

TEST(ServingStudy, FleetSizingBlockPopulated)
{
    const core::SanctionsStudy study;
    core::ServingStudyConfig cfg;
    cfg.ratesPerS = {};
    cfg.promptLen = LengthDistribution::fixed(512);
    cfg.outputLen = LengthDistribution::fixed(64);
    cfg.horizonS = 200.0;
    cfg.seed = 43;
    cfg.fleetRatePerS = 1.0;
    cfg.slo.ttftP99MaxS = 5.0;
    cfg.slo.tbtP99MaxS = 0.5;
    const core::ServingStudyResult r = study.runServingStudy(
        hw::modeledA100(), testWorkload(), cfg);
    EXPECT_TRUE(r.fleetSized);
    EXPECT_TRUE(r.fleet.simulated.feasible);
    EXPECT_GE(r.fleet.burstFactor(), 1.0);
}

} // anonymous namespace
} // namespace sim
} // namespace acs
