/**
 * @file
 * Unit tests for acs_econ: the linear market model and deadweight-loss
 * computation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "econ/market.hh"

namespace acs {
namespace econ {
namespace {

LinearMarket
unitMarket()
{
    // P = 10 - Q demand, P = 2 + Q supply -> Q* = 4, P* = 6.
    LinearMarket m;
    m.demandIntercept = 10.0;
    m.demandSlope = 1.0;
    m.supplyIntercept = 2.0;
    m.supplySlope = 1.0;
    return m;
}

TEST(LinearMarket, EquilibriumKnownValues)
{
    const LinearMarket m = unitMarket();
    EXPECT_DOUBLE_EQ(m.equilibriumQuantity(), 4.0);
    EXPECT_DOUBLE_EQ(m.equilibriumPrice(), 6.0);
}

TEST(LinearMarket, ValidationRejectsDegenerateMarkets)
{
    LinearMarket m = unitMarket();
    m.demandSlope = 0.0;
    EXPECT_THROW(m.validate(), FatalError);
    m = unitMarket();
    m.supplySlope = -1.0;
    EXPECT_THROW(m.validate(), FatalError);
    m = unitMarket();
    m.demandIntercept = 1.0; // below supply intercept
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Welfare, NoLossAtEquilibrium)
{
    const LinearMarket m = unitMarket();
    const Welfare w = restrictedWelfare(m, m.equilibriumQuantity());
    EXPECT_NEAR(w.deadweightLoss, 0.0, 1e-12);
    // CS = 1/2 b Q^2 = 8; PS = 8.
    EXPECT_DOUBLE_EQ(w.consumerSurplus, 8.0);
    EXPECT_DOUBLE_EQ(w.producerSurplus, 8.0);
    EXPECT_DOUBLE_EQ(w.totalSurplus, 16.0);
}

TEST(Welfare, CapAboveEquilibriumDoesNotBind)
{
    const LinearMarket m = unitMarket();
    const Welfare w = restrictedWelfare(m, 100.0);
    EXPECT_DOUBLE_EQ(w.quantity, 4.0);
    EXPECT_NEAR(w.deadweightLoss, 0.0, 1e-12);
}

TEST(Welfare, DeadweightLossIsHalfSlopeSumTimesGapSquared)
{
    // DWL = 1/2 (b + d) (Q* - q)^2 for a linear market.
    const LinearMarket m = unitMarket();
    for (double q : {0.0, 1.0, 2.0, 3.0}) {
        const Welfare w = restrictedWelfare(m, q);
        EXPECT_NEAR(w.deadweightLoss, 0.5 * 2.0 * (4.0 - q) * (4.0 - q),
                    1e-9)
            << q;
    }
}

TEST(Welfare, ScarcityRentAccruesToSellers)
{
    // Under a quantity cap, the buyer price rises along the demand
    // curve and producers capture the wedge.
    const LinearMarket m = unitMarket();
    const Welfare w = restrictedWelfare(m, 2.0);
    EXPECT_DOUBLE_EQ(w.buyerPrice, 8.0);
    // PS = P q - (c q + d q^2 / 2) = 16 - (4 + 2) = 10 > 8.
    EXPECT_DOUBLE_EQ(w.producerSurplus, 10.0);
    EXPECT_DOUBLE_EQ(w.consumerSurplus, 2.0);
}

TEST(Welfare, NegativeCapIsFatal)
{
    EXPECT_THROW(restrictedWelfare(unitMarket(), -1.0), FatalError);
}

TEST(DeadweightFraction, BoundsAndEndpoints)
{
    const LinearMarket m = unitMarket();
    EXPECT_NEAR(deadweightFraction(m, m.equilibriumQuantity()), 0.0,
                1e-12);
    EXPECT_DOUBLE_EQ(deadweightFraction(m, 0.0), 1.0);
    const double half = deadweightFraction(m, 2.0);
    EXPECT_GT(half, 0.0);
    EXPECT_LT(half, 1.0);
}

/** Property: deadweight loss shrinks as the cap loosens. */
class CapMonotone : public ::testing::TestWithParam<double>
{};

TEST_P(CapMonotone, LossNonIncreasingInCap)
{
    const LinearMarket m = unitMarket();
    const double cap = GetParam();
    EXPECT_GE(restrictedWelfare(m, cap).deadweightLoss,
              restrictedWelfare(m, cap + 0.5).deadweightLoss);
}

INSTANTIATE_TEST_SUITE_P(Caps, CapMonotone,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0, 2.5,
                                           3.0, 3.5));

TEST(MarketFromAnchors, RoundTripsEquilibrium)
{
    const LinearMarket m =
        marketFromAnchors(18000.0, 3e6, -1.5, 1.0);
    EXPECT_NEAR(m.equilibriumQuantity(), 3e6, 1.0);
    EXPECT_NEAR(m.equilibriumPrice(), 18000.0, 1e-3);
}

TEST(MarketFromAnchors, ElasticityControlsSlope)
{
    // More elastic demand -> flatter demand curve (smaller slope).
    const LinearMarket elastic =
        marketFromAnchors(100.0, 1000.0, -3.0, 1.0);
    const LinearMarket inelastic =
        marketFromAnchors(100.0, 1000.0, -0.5, 1.0);
    EXPECT_LT(elastic.demandSlope, inelastic.demandSlope);
}

TEST(MarketFromAnchors, InelasticDemandRaisesLossOfSameCut)
{
    // Scarce-substitute markets (inelastic demand) lose more welfare
    // for the same supply restriction.
    const double cap = 800.0;
    const LinearMarket elastic =
        marketFromAnchors(100.0, 1000.0, -3.0, 1.0);
    const LinearMarket inelastic =
        marketFromAnchors(100.0, 1000.0, -0.5, 1.0);
    EXPECT_GT(restrictedWelfare(inelastic, cap).deadweightLoss,
              restrictedWelfare(elastic, cap).deadweightLoss);
}

TEST(MarketFromAnchors, Validation)
{
    EXPECT_THROW(marketFromAnchors(0.0, 1000.0, -1.0, 1.0), FatalError);
    EXPECT_THROW(marketFromAnchors(100.0, 0.0, -1.0, 1.0), FatalError);
    EXPECT_THROW(marketFromAnchors(100.0, 1000.0, 1.0, 1.0),
                 FatalError);
    EXPECT_THROW(marketFromAnchors(100.0, 1000.0, -1.0, 0.0),
                 FatalError);
}

} // anonymous namespace
} // namespace econ
} // namespace acs
