/**
 * @file
 * Property tests of the adaptive DSE engine (dse/adaptive.hh) and its
 * checkpoint/shard machinery (dse/checkpoint.hh):
 *
 *  - Exactness: on the paper's fig06 (Table 3) and fig07 spaces the
 *    adaptive search returns bit-identical argmin designs — config,
 *    metrics, and enumeration-index tie-break — to the exhaustive
 *    stream, while evaluating under 30% of the space. A randomized
 *    space generator fuzzes the same property.
 *  - Checkpoint/resume: a run killed mid-search (maxEvaluations)
 *    resumes from its snapshot to a final checkpoint byte-identical
 *    to an uninterrupted run's.
 *  - Shard merge: independent shard runs merge deterministically and
 *    recover the global argmin.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "common/logging.hh"
#include "common/units.hh"
#include "core/study.hh"
#include "dse/adaptive.hh"
#include "dse/checkpoint.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"

namespace acs {
namespace dse {
namespace {

core::Workload
cheapWorkload(int tensor_parallel)
{
    core::Workload w = core::llamaWorkload();
    w.system.tensorParallel = tensor_parallel;
    return w;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Adaptive argmins must equal the exhaustive stream's bit-for-bit. */
void
expectMatchesExhaustive(const SweepSpace &space, const core::Workload &w,
                        double max_fraction)
{
    const DesignEvaluator evaluator(w.model, w.setting, w.system);
    const StreamStats exhaustive = evaluator.evaluateStream(space);

    AdaptiveSearch search(evaluator, space);
    const AdaptiveResult res = search.run();

    ASSERT_TRUE(exhaustive.bestTtft.has_value());
    ASSERT_TRUE(res.bestTtft.has_value());
    ASSERT_TRUE(res.bestTbt.has_value());
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.bestTtftIndex, exhaustive.bestTtftIndex);
    EXPECT_EQ(res.bestTbtIndex, exhaustive.bestTbtIndex);
    EXPECT_EQ(res.bestTtft->ttftS, exhaustive.bestTtft->ttftS);
    EXPECT_EQ(res.bestTtft->tbtS, exhaustive.bestTtft->tbtS);
    EXPECT_EQ(res.bestTbt->ttftS, exhaustive.bestTbt->ttftS);
    EXPECT_EQ(res.bestTbt->tbtS, exhaustive.bestTbt->tbtS);
    EXPECT_EQ(res.bestTtft->config.name,
              exhaustive.bestTtft->config.name);
    EXPECT_EQ(res.bestTbt->config.name, exhaustive.bestTbt->config.name);
    EXPECT_EQ(res.spacePoints, space.feasibleSize());
    EXPECT_LE(res.evaluated, res.shardPoints);
    if (max_fraction < 1.0)
        EXPECT_LT(res.fractionEvaluated, max_fraction);
}

// ---- exactness on the paper's spaces ---------------------------------------

TEST(AdaptiveSearch, MatchesExhaustiveOnFig06Space)
{
    expectMatchesExhaustive(
        table3Space(4800.0, {600.0 * units::GBPS}), cheapWorkload(4),
        0.30);
}

TEST(AdaptiveSearch, MatchesExhaustiveOnFig06SpaceSingleDevice)
{
    // TP=1 zeroes every allreduce: the whole dev axis ties, the
    // hardest case for the first-wins index tie-break.
    expectMatchesExhaustive(
        table3Space(4800.0, {600.0 * units::GBPS}), cheapWorkload(1),
        0.30);
}

TEST(AdaptiveSearch, MatchesExhaustiveOnFig07Spaces)
{
    const std::vector<double> dev = {500.0 * units::GBPS,
                                     700.0 * units::GBPS,
                                     900.0 * units::GBPS};
    for (double tpp : {1600.0, 2400.0, 4800.0}) {
        SCOPED_TRACE(tpp);
        expectMatchesExhaustive(table3Space(tpp, dev), cheapWorkload(4),
                                0.30);
    }
}

TEST(AdaptiveSearch, MatchesExhaustiveOnTable5Space)
{
    expectMatchesExhaustive(table5Space(), cheapWorkload(4), 1.0);
}

// ---- randomized spaces -----------------------------------------------------

TEST(AdaptiveSearch, MatchesExhaustiveOnRandomizedSpaces)
{
    std::mt19937 rng(20250809u);
    const auto axis = [&](double lo, double hi, std::size_t max_n) {
        std::uniform_int_distribution<std::size_t> count(1, max_n);
        std::uniform_real_distribution<double> value(lo, hi);
        const std::size_t n = count(rng);
        std::vector<double> v(n);
        for (double &x : v)
            x = value(rng);
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        return v;
    };
    for (int trial = 0; trial < 6; ++trial) {
        SCOPED_TRACE(trial);
        SweepSpace space = table3Space(4800.0, {});
        space.l1BytesPerCore =
            axis(128.0 * units::KIB, 1024.0 * units::KIB, 6);
        space.l2Bytes = axis(16.0 * units::MIB, 96.0 * units::MIB, 6);
        space.memBandwidths =
            axis(1.0 * units::TBPS, 3.2 * units::TBPS, 6);
        space.deviceBandwidths =
            axis(200.0 * units::GBPS, 900.0 * units::GBPS, 5);
        // Small spaces refine into full coverage; exactness is the
        // property under test here, not the pruning ratio.
        expectMatchesExhaustive(space, cheapWorkload(4), 1.0);
    }
}

// ---- checkpoint/resume -----------------------------------------------------

TEST(AdaptiveCheckpoint, KillResumeIsByteIdenticalToStraightRun)
{
    const SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    const core::Workload w = cheapWorkload(1);
    const DesignEvaluator evaluator(w.model, w.setting, w.system);

    const std::string full_path =
        testing::TempDir() + "acs-adaptive-full.ckpt";
    const std::string kill_path =
        testing::TempDir() + "acs-adaptive-kill.ckpt";
    std::remove(full_path.c_str());
    std::remove(kill_path.c_str());

    AdaptiveConfig cfg;
    cfg.checkpointPath = full_path;
    const AdaptiveResult straight =
        AdaptiveSearch(evaluator, space, cfg).run();
    EXPECT_TRUE(straight.complete);

    // Kill: the budget stops the search wave-aligned after the coarse
    // round; the final (incomplete) snapshot still lands on disk.
    AdaptiveConfig kill = cfg;
    kill.checkpointPath = kill_path;
    kill.maxEvaluations = 70;
    const AdaptiveResult killed =
        AdaptiveSearch(evaluator, space, kill).run();
    EXPECT_FALSE(killed.complete);
    EXPECT_LE(killed.evaluated, 70u);

    {
        Checkpoint ck;
        ASSERT_TRUE(readCheckpoint(kill_path, &ck));
        EXPECT_FALSE(ck.complete);
        EXPECT_EQ(ck.points.size(), killed.evaluated);
    }

    // Resume without a budget: replays the trajectory with cache hits
    // and runs to convergence.
    AdaptiveConfig resume = cfg;
    resume.checkpointPath = kill_path;
    const AdaptiveResult resumed =
        AdaptiveSearch(evaluator, space, resume).run();
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.evaluated, straight.evaluated);
    EXPECT_EQ(resumed.waves, straight.waves);
    EXPECT_EQ(resumed.bestTtftIndex, straight.bestTtftIndex);
    EXPECT_EQ(resumed.bestTbtIndex, straight.bestTbtIndex);
    ASSERT_EQ(resumed.frontier.size(), straight.frontier.size());
    for (std::size_t i = 0; i < resumed.frontier.size(); ++i) {
        EXPECT_EQ(resumed.frontier[i].index, straight.frontier[i].index);
        EXPECT_EQ(resumed.frontier[i].ttftS, straight.frontier[i].ttftS);
        EXPECT_EQ(resumed.frontier[i].tbtS, straight.frontier[i].tbtS);
    }

    // The resumed final checkpoint is byte-identical to the straight
    // run's — the whole file, frontier included by construction.
    EXPECT_EQ(slurp(kill_path), slurp(full_path));

    std::remove(full_path.c_str());
    std::remove(kill_path.c_str());
}

TEST(AdaptiveCheckpoint, WriteReadRoundTripIsExact)
{
    Checkpoint ck;
    ck.fingerprint = 0xdeadbeefcafef00dull;
    ck.shard = ShardSpec{2, 8};
    ck.spacePoints = 123456789;
    ck.complete = false;
    ck.waves = 17;
    // Awkward doubles: subnormal, negative zero, huge, tiny.
    ck.points.push_back({0, 5e-324, -0.0, POINT_KEPT});
    ck.points.push_back({41, 1.0 / 3.0, 2.0 / 3.0,
                         POINT_KEPT | POINT_UNDER_RETICLE});
    ck.points.push_back({999999999999ull, 1e308, 2.5e-308,
                         POINT_UNREGULATED});

    const std::string path =
        testing::TempDir() + "acs-ckpt-roundtrip.ckpt";
    writeCheckpoint(path, ck);
    Checkpoint back;
    ASSERT_TRUE(readCheckpoint(path, &back));
    EXPECT_EQ(back.version, CHECKPOINT_VERSION);
    EXPECT_EQ(back.fingerprint, ck.fingerprint);
    EXPECT_TRUE(back.shard == ck.shard);
    EXPECT_EQ(back.spacePoints, ck.spacePoints);
    EXPECT_EQ(back.complete, ck.complete);
    EXPECT_EQ(back.waves, ck.waves);
    ASSERT_EQ(back.points.size(), ck.points.size());
    for (std::size_t i = 0; i < ck.points.size(); ++i) {
        EXPECT_EQ(back.points[i].index, ck.points[i].index);
        // Bit-level comparison (EXPECT_EQ on -0.0 would pass vs 0.0).
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.points[i].ttftS),
                  std::bit_cast<std::uint64_t>(ck.points[i].ttftS));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.points[i].tbtS),
                  std::bit_cast<std::uint64_t>(ck.points[i].tbtS));
        EXPECT_EQ(back.points[i].flags, ck.points[i].flags);
    }
    std::remove(path.c_str());
}

TEST(AdaptiveCheckpoint, MissingFileReadsFalse)
{
    Checkpoint ck;
    EXPECT_FALSE(
        readCheckpoint(testing::TempDir() + "acs-no-such.ckpt", &ck));
}

// ---- sharding --------------------------------------------------------------

TEST(ShardSpec, ParseAndRange)
{
    const ShardSpec s = parseShardSpec("2/8");
    EXPECT_EQ(s.index, 2u);
    EXPECT_EQ(s.count, 8u);
    EXPECT_THROW(parseShardSpec("8/8"), FatalError);
    EXPECT_THROW(parseShardSpec("nope"), FatalError);

    // Ranges partition [0, outers) contiguously, remainder up front.
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        const auto [first, last] = shardOuterRange({i, 3}, 8);
        EXPECT_EQ(first, prev_end);
        prev_end = last;
        covered += last - first;
    }
    EXPECT_EQ(prev_end, 8u);
    EXPECT_EQ(covered, 8u);
}

TEST(AdaptiveShards, MergedShardsRecoverGlobalArgmin)
{
    const SweepSpace space = table3Space(
        2400.0, {500.0 * units::GBPS, 700.0 * units::GBPS,
                 900.0 * units::GBPS});
    const core::Workload w = cheapWorkload(4);
    const DesignEvaluator evaluator(w.model, w.setting, w.system);
    const StreamStats exhaustive = evaluator.evaluateStream(space);

    std::vector<Checkpoint> shards;
    for (std::size_t i = 0; i < 2; ++i) {
        const std::string path = testing::TempDir() + "acs-shard-" +
                                 std::to_string(i) + ".ckpt";
        std::remove(path.c_str());
        AdaptiveConfig cfg;
        cfg.shard = ShardSpec{i, 2};
        cfg.checkpointPath = path;
        const AdaptiveResult res =
            AdaptiveSearch(evaluator, space, cfg).run();
        EXPECT_TRUE(res.complete);
        Checkpoint ck;
        ASSERT_TRUE(readCheckpoint(path, &ck));
        EXPECT_TRUE(ck.complete);
        shards.push_back(std::move(ck));
        std::remove(path.c_str());
    }

    // Merge validates coverage and keeps points sorted by index.
    const Checkpoint merged = mergeShardCheckpoints(shards);
    EXPECT_TRUE(merged.complete);
    EXPECT_EQ(merged.shard.count, 1u);
    for (std::size_t i = 1; i < merged.points.size(); ++i)
        EXPECT_LT(merged.points[i - 1].index, merged.points[i].index);

    // The global argmin is the min over shard-local argmins, each of
    // which the per-shard search found exactly.
    bool have = false;
    double best = 0.0;
    std::size_t best_index = 0;
    for (const CheckpointPoint &p : merged.points) {
        if (!(p.flags & POINT_KEPT))
            continue;
        if (!have || p.ttftS < best) {
            best = p.ttftS;
            best_index = p.index;
            have = true;
        }
    }
    ASSERT_TRUE(have && exhaustive.bestTtft.has_value());
    EXPECT_EQ(best_index, exhaustive.bestTtftIndex);
    EXPECT_EQ(best, exhaustive.bestTtft->ttftS);

    // Frontier of the merged set: strictly tradeoff-ordered.
    const std::vector<FrontierPoint> frontier =
        frontierOfPoints(merged.points);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].ttftS, frontier[i - 1].ttftS);
        EXPECT_LT(frontier[i].tbtS, frontier[i - 1].tbtS);
    }
    EXPECT_EQ(frontier.front().ttftS, exhaustive.bestTtft->ttftS);

    // Mismatched fingerprints must refuse to merge.
    std::vector<Checkpoint> bad = shards;
    bad[1].fingerprint ^= 1;
    EXPECT_THROW(mergeShardCheckpoints(bad), FatalError);
}

} // namespace
} // namespace dse
} // namespace acs
