/**
 * @file
 * Unit tests for acs_area: the per-component area model and the
 * wafer/yield cost model (validated against the paper's Table 4).
 */

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "area/cost_model.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"

namespace acs {
namespace area {
namespace {

// ---- area model ----------------------------------------------------------

TEST(AreaModel, BreakdownTotalIsComponentSum)
{
    const AreaModel model;
    const AreaBreakdown b = model.breakdown(hw::modeledA100());
    const double sum = b.systolicMacs + b.systolicCtrl + b.vectorUnits +
                       b.l1Sram + b.l2Sram + b.coreOverhead + b.memPhy +
                       b.devicePhy + b.noc + b.misc;
    EXPECT_DOUBLE_EQ(b.total(), sum);
}

TEST(AreaModel, AllComponentsPositiveForA100)
{
    const AreaBreakdown b = AreaModel().breakdown(hw::modeledA100());
    EXPECT_GT(b.systolicMacs, 0.0);
    EXPECT_GT(b.systolicCtrl, 0.0);
    EXPECT_GT(b.vectorUnits, 0.0);
    EXPECT_GT(b.l1Sram, 0.0);
    EXPECT_GT(b.l2Sram, 0.0);
    EXPECT_GT(b.coreOverhead, 0.0);
    EXPECT_GT(b.memPhy, 0.0);
    EXPECT_GT(b.devicePhy, 0.0);
    EXPECT_GT(b.noc, 0.0);
    EXPECT_GT(b.misc, 0.0);
}

TEST(AreaModel, A100LandsInGA100Class)
{
    // The GA100 die is 826 mm^2 with 128 SMs; the modeled A100 (108
    // enabled SMs) should land in the 600-800 mm^2 class.
    const double a = AreaModel().dieArea(hw::modeledA100());
    EXPECT_GT(a, 600.0);
    EXPECT_LT(a, 800.0);
}

TEST(AreaModel, SramDeltaMatchesTable4Scale)
{
    // Table 4's two 2400-TPP designs differ by ~99 MiB of SRAM and
    // ~230 mm^2 of die area (753 vs 523).
    const AreaModel model;
    hw::HardwareConfig small = hw::modeledA100();
    small.coreCount = 103;
    small.lanesPerCore = 2;
    small.l1BytesPerCore = 192.0 * units::KIB;
    small.l2Bytes = 32.0 * units::MIB;

    hw::HardwareConfig big = small;
    big.l1BytesPerCore = 1024.0 * units::KIB;
    big.l2Bytes = 48.0 * units::MIB;

    const double delta = model.dieArea(big) - model.dieArea(small);
    EXPECT_NEAR(delta, 230.0, 40.0);
}

TEST(AreaModel, AreaGrowsWithEveryResource)
{
    const AreaModel model;
    const hw::HardwareConfig base = hw::modeledA100();
    const double base_area = model.dieArea(base);

    auto grows = [&](auto mutate) {
        hw::HardwareConfig cfg = base;
        mutate(cfg);
        return model.dieArea(cfg) > base_area;
    };
    EXPECT_TRUE(grows([](auto &c) { c.coreCount += 16; }));
    EXPECT_TRUE(grows([](auto &c) { c.lanesPerCore *= 2; }));
    EXPECT_TRUE(grows([](auto &c) { c.l1BytesPerCore *= 2; }));
    EXPECT_TRUE(grows([](auto &c) { c.l2Bytes *= 2; }));
    EXPECT_TRUE(grows([](auto &c) { c.memBandwidth *= 2; }));
    EXPECT_TRUE(grows([](auto &c) { c.devicePhyCount += 6; }));
}

TEST(AreaModel, ProcessScaleOrdering)
{
    EXPECT_GT(AreaModel::processScale(hw::ProcessNode::N16),
              AreaModel::processScale(hw::ProcessNode::N12));
    EXPECT_GT(AreaModel::processScale(hw::ProcessNode::N12),
              AreaModel::processScale(hw::ProcessNode::N7));
    EXPECT_GT(AreaModel::processScale(hw::ProcessNode::N7),
              AreaModel::processScale(hw::ProcessNode::N5));
    EXPECT_DOUBLE_EQ(AreaModel::processScale(hw::ProcessNode::N7), 1.0);
}

TEST(AreaModel, OlderProcessGivesLargerDie)
{
    const AreaModel model;
    hw::HardwareConfig cfg = hw::modeledA100();
    const double n7 = model.dieArea(cfg);
    cfg.process = hw::ProcessNode::N16;
    EXPECT_GT(model.dieArea(cfg), n7);
}

TEST(AreaModel, ChipletPackageMultipliesArea)
{
    const AreaModel model;
    hw::HardwareConfig cfg = hw::modeledA100();
    const double one = model.dieArea(cfg);
    cfg.diesPerPackage = 3;
    EXPECT_NEAR(model.dieArea(cfg), 3.0 * one, 1e-9);
}

TEST(AreaModel, PerfDensityIsTppOverArea)
{
    const AreaModel model;
    const hw::HardwareConfig cfg = hw::modeledA100();
    EXPECT_NEAR(model.perfDensity(cfg),
                cfg.tpp() / model.dieArea(cfg), 1e-12);
}

TEST(AreaModel, PlanarProcessHasZeroPerfDensity)
{
    // PD only counts non-planar-transistor dies (Sec. 2.1).
    const AreaModel model;
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.nonPlanarTransistor = false;
    EXPECT_DOUBLE_EQ(model.perfDensity(cfg), 0.0);
}

TEST(AreaModel, InvalidParamsAreFatal)
{
    AreaParams params;
    params.macAreaMm2 = 0.0;
    EXPECT_THROW(AreaModel{params}, FatalError);
    params = AreaParams{};
    params.sramMm2PerMib = -1.0;
    EXPECT_THROW(AreaModel{params}, FatalError);
    params = AreaParams{};
    params.miscMm2 = -1.0;
    EXPECT_THROW(AreaModel{params}, FatalError);
}

TEST(AreaModel, WiderBitwidthGrowsMacArea)
{
    const AreaModel model;
    hw::HardwareConfig cfg = hw::modeledA100();
    const double fp16 = model.breakdown(cfg).systolicMacs;
    cfg.opBitwidth = 32;
    EXPECT_NEAR(model.breakdown(cfg).systolicMacs, 4.0 * fp16, 1e-9);
}

// ---- cost model ------------------------------------------------------------

TEST(CostModel, DiesPerWaferMatchesTable4)
{
    const CostModel cost;
    EXPECT_EQ(cost.diesPerWafer(753.0), 69);
    EXPECT_EQ(cost.diesPerWafer(523.0), 106);
}

TEST(CostModel, DieCostMatchesTable4)
{
    // Paper: $134 at 753 mm^2, $88 at 523 mm^2 (7 nm).
    const CostModel cost;
    EXPECT_NEAR(cost.dieCostUsd(753.0, hw::ProcessNode::N7), 134.0, 3.0);
    EXPECT_NEAR(cost.dieCostUsd(523.0, hw::ProcessNode::N7), 88.0, 2.0);
}

TEST(CostModel, MillionGoodDiesMatchesTable4Scale)
{
    // Paper: $350M vs $177M — a ~1.98x ratio.
    const CostModel cost;
    const double big =
        cost.costForGoodDiesUsd(753.0, hw::ProcessNode::N7, 1e6);
    const double small =
        cost.costForGoodDiesUsd(523.0, hw::ProcessNode::N7, 1e6);
    EXPECT_NEAR(big / 1e6, 350.0, 40.0);
    EXPECT_NEAR(small / 1e6, 177.0, 20.0);
    EXPECT_NEAR(big / small, 1.98, 0.25);
}

TEST(CostModel, MurphyYieldKnownValues)
{
    const CostModel cost;
    // A*D = 753 * 0.0015 = 1.1295 -> Murphy ~0.359.
    EXPECT_NEAR(cost.murphyYield(753.0), 0.359, 0.01);
    EXPECT_NEAR(cost.murphyYield(523.0), 0.481, 0.01);
}

TEST(CostModel, ZeroDefectDensityIsPerfectYield)
{
    CostParams params;
    params.defectDensityPerMm2 = 0.0;
    const CostModel cost(params);
    EXPECT_DOUBLE_EQ(cost.murphyYield(800.0), 1.0);
}

TEST(CostModel, WaferPricesOrdered)
{
    EXPECT_LT(waferPriceUsd(hw::ProcessNode::N16),
              waferPriceUsd(hw::ProcessNode::N7));
    EXPECT_LT(waferPriceUsd(hw::ProcessNode::N7),
              waferPriceUsd(hw::ProcessNode::N5));
}

TEST(CostModel, HugeDieIsFatal)
{
    const CostModel cost;
    EXPECT_THROW(cost.dieCostUsd(70000.0, hw::ProcessNode::N7),
                 FatalError);
}

TEST(CostModel, ValidatesInput)
{
    const CostModel cost;
    EXPECT_THROW(cost.diesPerWafer(0.0), FatalError);
    EXPECT_THROW(cost.murphyYield(-1.0), FatalError);
    EXPECT_THROW(cost.costForGoodDiesUsd(500.0, hw::ProcessNode::N7,
                                         -1.0),
                 FatalError);
    CostParams bad;
    bad.waferDiameterMm = 0.0;
    EXPECT_THROW(CostModel{bad}, FatalError);
}

/** Property sweep: yield, dies/wafer, and cost are monotone in area. */
class CostMonotone : public ::testing::TestWithParam<double>
{};

TEST_P(CostMonotone, MonotoneInDieArea)
{
    const CostModel cost;
    const double area = GetParam();
    const double bigger = area * 1.25;
    EXPECT_GE(cost.murphyYield(area), cost.murphyYield(bigger));
    EXPECT_GE(cost.diesPerWafer(area), cost.diesPerWafer(bigger));
    EXPECT_LE(cost.dieCostUsd(area, hw::ProcessNode::N7),
              cost.dieCostUsd(bigger, hw::ProcessNode::N7));
    EXPECT_LE(cost.goodDieCostUsd(area, hw::ProcessNode::N7),
              cost.goodDieCostUsd(bigger, hw::ProcessNode::N7));
}

INSTANTIATE_TEST_SUITE_P(Areas, CostMonotone,
                         ::testing::Values(50.0, 100.0, 200.0, 300.0,
                                           450.0, 600.0, 753.0, 860.0,
                                           1200.0));

TEST(CostModel, YieldWithinUnitInterval)
{
    const CostModel cost;
    for (double a : {1.0, 10.0, 100.0, 500.0, 860.0, 2000.0}) {
        const double y = cost.murphyYield(a);
        EXPECT_GT(y, 0.0);
        EXPECT_LE(y, 1.0);
    }
}

TEST(Reticle, LimitIs860)
{
    EXPECT_DOUBLE_EQ(RETICLE_LIMIT_MM2, 860.0);
}

} // anonymous namespace
} // namespace area
} // namespace acs
