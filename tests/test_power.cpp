/**
 * @file
 * Unit tests for the power / operating-cost model (Sec. 4.4).
 */

#include <gtest/gtest.h>

#include "area/power_model.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"

namespace acs {
namespace area {
namespace {

const ActivityProfile IDLE{0.0, 0.0, 0.0};
const ActivityProfile SERVING{0.5, 0.5, 4.0};

TEST(PowerModel, BreakdownSumsCorrectly)
{
    const PowerModel model;
    const PowerBreakdown p = model.power(hw::modeledA100(), SERVING);
    EXPECT_DOUBLE_EQ(p.staticW(), p.sramLeakageW + p.logicLeakageW);
    EXPECT_DOUBLE_EQ(p.dynamicW(),
                     p.computeW + p.hbmW + p.sramDynamicW);
    EXPECT_DOUBLE_EQ(p.totalW(), p.staticW() + p.dynamicW());
}

TEST(PowerModel, A100ClassPowerIsPlausible)
{
    // The A100 is a 400 W part; a serving-level activity profile
    // should land within the same order of magnitude.
    const PowerModel model;
    const double w = model.power(hw::modeledA100(), SERVING).totalW();
    EXPECT_GT(w, 80.0);
    EXPECT_LT(w, 600.0);
}

TEST(PowerModel, IdleDeviceBurnsOnlyLeakage)
{
    const PowerModel model;
    const PowerBreakdown p = model.power(hw::modeledA100(), IDLE);
    EXPECT_DOUBLE_EQ(p.dynamicW(), 0.0);
    EXPECT_GT(p.staticW(), 0.0);
}

TEST(PowerModel, SramLeakageScalesWithCapacity)
{
    const PowerModel model;
    hw::HardwareConfig big = hw::modeledA100();
    big.l1BytesPerCore = 1024.0 * units::KIB;
    big.l2Bytes = 80.0 * units::MIB;
    const double small_leak =
        model.power(hw::modeledA100(), IDLE).sramLeakageW;
    const double big_leak = model.power(big, IDLE).sramLeakageW;
    const double small_mib =
        (108.0 * 192.0 * units::KIB + 40.0 * units::MIB) / units::MIB;
    const double big_mib =
        (108.0 * 1024.0 * units::KIB + 80.0 * units::MIB) / units::MIB;
    EXPECT_NEAR(big_leak / small_leak, big_mib / small_mib, 1e-9);
}

TEST(PowerModel, ComputePowerScalesWithUtilization)
{
    const PowerModel model;
    const ActivityProfile half{0.5, 0.0, 0.0};
    const ActivityProfile full{1.0, 0.0, 0.0};
    const double p_half =
        model.power(hw::modeledA100(), half).computeW;
    const double p_full =
        model.power(hw::modeledA100(), full).computeW;
    EXPECT_NEAR(p_full, 2.0 * p_half, 1e-9);
}

TEST(PowerModel, HbmPowerScalesWithBandwidthAndUtilization)
{
    const PowerModel model;
    hw::HardwareConfig fast = hw::modeledA100();
    fast.memBandwidth = 3.2 * units::TBPS;
    const ActivityProfile mem_only{0.0, 1.0, 0.0};
    EXPECT_GT(model.power(fast, mem_only).hbmW,
              model.power(hw::modeledA100(), mem_only).hbmW);
}

TEST(PowerModel, ValidatesActivity)
{
    const PowerModel model;
    EXPECT_THROW(model.power(hw::modeledA100(),
                             ActivityProfile{1.5, 0.0, 0.0}),
                 FatalError);
    EXPECT_THROW(model.power(hw::modeledA100(),
                             ActivityProfile{0.0, -0.1, 0.0}),
                 FatalError);
    EXPECT_THROW(model.power(hw::modeledA100(),
                             ActivityProfile{0.0, 0.0, -1.0}),
                 FatalError);
}

TEST(PowerModel, ValidatesParams)
{
    PowerParams bad;
    bad.energyPerFlopJ = -1.0;
    EXPECT_THROW(PowerModel(AreaModel{}, bad), FatalError);
}

TEST(OperatingCost, FormulaAndValidation)
{
    // 1 kW at $0.10/kWh and PUE 1.0: 8760 kWh -> $876/yr.
    EXPECT_NEAR(PowerModel::operatingCostUsdPerYear(1000.0, 0.10, 1.0),
                876.0, 1e-9);
    // PUE multiplies linearly.
    EXPECT_NEAR(PowerModel::operatingCostUsdPerYear(1000.0, 0.10, 1.3),
                876.0 * 1.3, 1e-9);
    EXPECT_THROW(PowerModel::operatingCostUsdPerYear(-1.0), FatalError);
    EXPECT_THROW(PowerModel::operatingCostUsdPerYear(100.0, -0.1),
                 FatalError);
    EXPECT_THROW(PowerModel::operatingCostUsdPerYear(100.0, 0.1, 0.9),
                 FatalError);
}

/** Property: total power is monotone in each activity axis. */
class ActivityMonotone : public ::testing::TestWithParam<double>
{};

TEST_P(ActivityMonotone, PowerNonDecreasingInUtilization)
{
    const PowerModel model;
    const double u = GetParam();
    const double lo =
        model.power(hw::modeledA100(), ActivityProfile{u, u, 2.0})
            .totalW();
    const double hi =
        model.power(hw::modeledA100(),
                    ActivityProfile{std::min(1.0, u + 0.2),
                                    std::min(1.0, u + 0.2), 2.0})
            .totalW();
    EXPECT_GE(hi, lo);
}

INSTANTIATE_TEST_SUITE_P(Utils, ActivityMonotone,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8));

TEST(PowerModel, ChipletPackageScalesLeakage)
{
    const PowerModel model;
    hw::HardwareConfig mcm = hw::modeledA100();
    mcm.diesPerPackage = 2;
    EXPECT_NEAR(model.power(mcm, IDLE).staticW(),
                2.0 * model.power(hw::modeledA100(), IDLE).staticW(),
                1e-9);
}

} // anonymous namespace
} // namespace area
} // namespace acs
