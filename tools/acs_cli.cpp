/**
 * @file
 * acs — the unified command-line front end.
 *
 * Subcommands:
 *   classify <tpp> <devbw_gbps> <area_mm2> [dc|consumer]
 *       Rule outcomes for a spec given on the command line.
 *   db [segment]
 *       Print the device catalogue (optionally one market segment).
 *   evaluate <config.kv> <workload>
 *       Evaluate a design file on a workload vs the A100 baseline.
 *   sweep <workload> <tpp>
 *       Run the Table-3 sweep and print compliant optima.
 *   metrics <config.kv>
 *       CTP / APP / TPP for a design file.
 *   serve-sim <workload> [device] [--rate=...] [--seed=N] ...
 *       Request-level serving simulation: latency-vs-load percentile
 *       curve and optional percentile-aware fleet sizing.
 *   help
 *
 * The global option --trace=<file> (or the ACS_TRACE environment
 * variable) records counters and spans during the command, prints a
 * per-stage summary, and writes a Chrome-trace JSON to <file>.
 * --gemm-mode={analytic,tile_sim} selects the GEMM latency model for
 * the evaluate/sweep commands, and --gemm-cache={on,off} toggles the
 * sweep-scoped cross-design GEMM cache in tile_sim mode — output is
 * byte-identical either way (docs/PERF.md).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/acs.hh"

using namespace acs;

namespace {

/** Model constants shared by evaluate/sweep; set by global options. */
perf::PerfParams g_perf_params;

int
usage()
{
    std::cout <<
        "usage: acs [--trace=<file>] [--gemm-mode=<mode>]\n"
        "           [--gemm-cache=on|off] <command> [args]\n"
        "  classify <tpp> <devbw_gbps> <area_mm2> [dc|consumer]\n"
        "  db [data-center|consumer|workstation]\n"
        "  evaluate <config.kv> <gpt3|llama|llama70b|mixtral>\n"
        "  sweep <gpt3|llama|llama70b|mixtral> <tpp>\n"
        "  metrics <config.kv>\n"
        "  serve-sim <gpt3|llama|llama70b|mixtral> [device]\n"
        "            [--rate=r1,r2,...] [--seed=<n>]\n"
        "            [--slo-p99=<ttft_s>,<tbt_s>] [--demand=<req/s>]\n"
        "            [--prompt=<len>] [--output=<len>] [--horizon=<s>]\n"
        "    [device] is a100|a800|h100|h20 or a config.kv path\n"
        "    (default a100). --rate sets per-replica offered loads for\n"
        "    the latency-vs-load curve; --demand adds percentile-aware\n"
        "    fleet sizing for that aggregate rate with the closed-form\n"
        "    cross-check (docs/SERVING.md).\n"
        "--trace=<file> (or ACS_TRACE=<file>) records observability\n"
        "counters/spans and writes Chrome-trace JSON to <file>.\n"
        "--gemm-mode=analytic|tile_sim picks the GEMM latency model\n"
        "for evaluate/sweep (default analytic; see docs/PERF.md).\n"
        "--gemm-cache=on|off toggles tile_sim's sweep-scoped GEMM\n"
        "cache (default on; byte-identical output either way).\n";
    return 2;
}

hw::HardwareConfig
loadConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    return hw::configFromKeyVal(KeyVal::parse(buf.str()));
}

int
cmdClassify(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return usage();
    policy::DeviceSpec spec;
    spec.name = "cli-device";
    spec.tpp = std::stod(args[0]);
    spec.deviceBandwidthGBps = std::stod(args[1]);
    spec.dieAreaMm2 = std::stod(args[2]);
    spec.market = args.size() > 3 && args[3] == "consumer"
                      ? policy::MarketSegment::CONSUMER
                      : policy::MarketSegment::DATA_CENTER;

    Table t({"rule", "classification"});
    t.addRow({"Oct 2022", toString(policy::Oct2022Rule::classify(spec))});
    t.addRow({"Oct 2023 (as marketed)",
              toString(policy::Oct2023Rule::classify(spec))});
    t.addRow({"Oct 2023 (if DC)",
              toString(policy::Oct2023Rule::classifyAs(
                  spec, policy::MarketSegment::DATA_CENTER))});
    t.print(std::cout);
    if (spec.tpp < policy::Oct2023Rule::TPP_LICENSE) {
        const double floor =
            policy::Oct2023Rule::minUnregulatedDieArea(spec.tpp);
        if (floor > 0.0) {
            std::cout << "unregulated above " << fmt(floor, 1)
                      << " mm^2 of applicable die area\n";
        }
    }
    return 0;
}

int
cmdDb(const std::vector<std::string> &args)
{
    const devices::Database db;
    Table t({"device", "released", "market", "TPP", "PD",
             "mem", "Oct 2023"});
    for (const auto &rec : db.all()) {
        if (!args.empty() && toString(rec.market) != args[0])
            continue;
        t.addRow({rec.name,
                  std::to_string(rec.releaseYear) + "-" +
                      (rec.releaseMonth < 10 ? "0" : "") +
                      std::to_string(rec.releaseMonth),
                  toString(rec.market), fmt(rec.tpp, 0),
                  fmt(rec.toSpec().perfDensity()),
                  fmt(rec.memCapacityGB, 0) + "GB@" +
                      fmt(rec.memBandwidthGBps, 0),
                  toString(policy::Oct2023Rule::classify(
                      rec.toSpec()))});
    }
    t.print(std::cout);
    std::cout << t.rowCount() << " devices\n";
    return 0;
}

int
cmdEvaluate(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const hw::HardwareConfig cfg = loadConfig(args[0]);
    const core::Workload workload = core::workloadByName(args[1]);
    const core::SanctionsStudy study(g_perf_params);
    const core::DesignReport report =
        study.evaluateDesign(cfg, workload);

    Table t({"metric", cfg.name, "modeled A100", "delta"});
    t.addRow({"TTFT/layer (ms)",
              fmt(units::toMs(report.design.ttftS), 2),
              fmt(units::toMs(report.baseline.ttftS), 2),
              fmtPercent(report.ttftDelta())});
    t.addRow({"TBT/layer (ms)",
              fmt(units::toMs(report.design.tbtS), 4),
              fmt(units::toMs(report.baseline.tbtS), 4),
              fmtPercent(report.tbtDelta())});
    t.addRow({"TPP", fmt(report.design.tpp, 0),
              fmt(report.baseline.tpp, 0), ""});
    t.addRow({"die area (mm^2)", fmt(report.design.dieAreaMm2, 1),
              fmt(report.baseline.dieAreaMm2, 1), ""});
    t.addRow({"die cost ($)", fmt(report.design.dieCostUsd, 0),
              fmt(report.baseline.dieCostUsd, 0), ""});
    t.print(std::cout);
    std::cout << "Oct 2022: " << toString(report.rules.oct2022)
              << "; Oct 2023 DC: "
              << toString(report.rules.oct2023DataCenter) << "\n";
    return 0;
}

int
cmdSweep(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const core::Workload workload = core::workloadByName(args[0]);
    const double tpp = std::stod(args[1]);
    const core::SanctionsStudy study(g_perf_params);
    const auto baseline = study.evaluateBaseline(workload);
    const auto designs = study.runSweep(
        dse::table3Space(tpp, {500.0 * units::GBPS,
                               700.0 * units::GBPS,
                               900.0 * units::GBPS}),
        workload);
    const auto compliant =
        dse::filterOct2023Unregulated(dse::filterReticle(designs));
    std::cout << designs.size() << " designs, " << compliant.size()
              << " compliant+manufacturable\n";
    if (compliant.empty())
        return 0;
    const auto &fast = dse::minTtft(compliant);
    const auto &decode = dse::minTbt(compliant);
    std::cout << "best TTFT: " << fmt(units::toMs(fast.ttftS), 1)
              << " ms ("
              << fmtPercent(fast.ttftS / baseline.ttftS - 1.0)
              << " vs A100) [" << fast.config.name << "]\n";
    std::cout << "best TBT:  " << fmt(units::toMs(decode.tbtS), 4)
              << " ms ("
              << fmtPercent(decode.tbtS / baseline.tbtS - 1.0)
              << " vs A100) [" << decode.config.name << "]\n";
    return 0;
}

int
cmdMetrics(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const hw::HardwareConfig cfg = loadConfig(args[0]);
    const policy::MetricHistory h = policy::metricHistory(cfg);
    Table t({"metric", "value"});
    t.addRow({"CTP (MTOPS, 1991)", fmt(h.ctpMtops, 0)});
    t.addRow({"APP (WT, 2006)", fmt(h.appWt, 2)});
    t.addRow({"TPP (2022)", fmt(h.tpp, 0)});
    t.print(std::cout);
    return 0;
}

/** Split "a,b,c" into doubles (fatal on parse errors via stod). */
std::vector<double>
parseDoubleList(const std::string &text)
{
    std::vector<double> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(std::stod(item));
    return values;
}

/** Map a preset name or config.kv path to a device. */
hw::HardwareConfig
deviceByName(const std::string &name)
{
    if (name == "a100")
        return hw::modeledA100();
    if (name == "a800")
        return hw::modeledA800();
    if (name == "h100")
        return hw::modeledH100();
    if (name == "h20")
        return hw::modeledH20Style();
    return loadConfig(name);
}

int
cmdServeSim(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const core::Workload workload = core::workloadByName(args[0]);
    hw::HardwareConfig cfg = hw::modeledA100();
    core::ServingStudyConfig scfg;

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--rate=", 0) == 0) {
            scfg.ratesPerS = parseDoubleList(arg.substr(7));
        } else if (arg.rfind("--seed=", 0) == 0) {
            scfg.seed = std::stoull(arg.substr(7));
        } else if (arg.rfind("--slo-p99=", 0) == 0) {
            const auto bounds = parseDoubleList(arg.substr(10));
            if (bounds.size() != 2) {
                std::cerr << "--slo-p99 expects <ttft_s>,<tbt_s>\n";
                return usage();
            }
            scfg.slo.ttftP99MaxS = bounds[0];
            scfg.slo.tbtP99MaxS = bounds[1];
        } else if (arg.rfind("--demand=", 0) == 0) {
            scfg.fleetRatePerS = std::stod(arg.substr(9));
        } else if (arg.rfind("--prompt=", 0) == 0) {
            scfg.promptLen =
                sim::LengthDistribution::fixed(std::stoi(arg.substr(9)));
        } else if (arg.rfind("--output=", 0) == 0) {
            scfg.outputLen =
                sim::LengthDistribution::fixed(std::stoi(arg.substr(9)));
        } else if (arg.rfind("--horizon=", 0) == 0) {
            scfg.horizonS = std::stod(arg.substr(10));
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown serve-sim option '" << arg << "'\n";
            return usage();
        } else {
            cfg = deviceByName(arg);
        }
    }

    const core::SanctionsStudy study(g_perf_params);
    const core::ServingStudyResult result =
        study.runServingStudy(cfg, workload, scfg);

    std::cout << cfg.name << ", " << args[0] << ", seed " << scfg.seed
              << ", horizon " << fmt(scfg.horizonS, 0) << " s\n";
    if (!result.curve.empty()) {
        Table t({"req/s", "done", "TTFT p50 (s)", "TTFT p99 (s)",
                 "TBT p50 (ms)", "TBT p99 (ms)", "attain",
                 "goodput tok/s", "max queue"});
        for (const auto &p : result.curve) {
            t.addRow({fmt(p.ratePerS, 2), std::to_string(p.completed),
                      fmt(p.ttft.p50S, 3), fmt(p.ttft.p99S, 3),
                      fmt(units::toMs(p.tbt.p50S), 2),
                      fmt(units::toMs(p.tbt.p99S), 2),
                      fmt(100.0 * p.attainment, 1) + "%",
                      fmt(p.goodputTokensPerS, 0),
                      std::to_string(p.maxQueueDepth)});
        }
        t.print(std::cout);
    }

    if (result.fleetSized) {
        const auto &plan = result.fleet;
        std::cout << "fleet for " << fmt(scfg.fleetRatePerS, 2)
                  << " req/s at p99 SLO (TTFT "
                  << fmt(scfg.slo.ttftP99MaxS, 2) << " s, TBT "
                  << fmt(scfg.slo.tbtP99MaxS, 3) << " s):\n";
        if (plan.simulated.feasible) {
            std::cout << "  simulated: " << plan.simulated.replicas
                      << " replicas = " << plan.simulated.devices
                      << " devices (" << plan.simulated.probes
                      << " probes)\n";
        } else {
            std::cout << "  simulated: infeasible within search cap\n";
        }
        std::cout << "  closed form: " << plan.closedFormDevices
                  << " devices (steady-state mean)\n";
        if (plan.burstFactor() > 0.0) {
            std::cout << "  burst factor: "
                      << fmt(plan.burstFactor(), 2) << "x\n";
        }
    }
    return 0;
}

int
runCommand(const std::string &cmd, const std::vector<std::string> &args)
{
    const obs::TraceSpan span("cli." + cmd);
    if (cmd == "classify")
        return cmdClassify(args);
    if (cmd == "db")
        return cmdDb(args);
    if (cmd == "evaluate")
        return cmdEvaluate(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "metrics")
        return cmdMetrics(args);
    if (cmd == "serve-sim")
        return cmdServeSim(args);
    return usage();
}

/** Print the observability summary and write the trace file, if on. */
void
reportObs(const std::string &trace_path)
{
    if (!obs::enabled())
        return;
    std::cout << "\n--- observability summary ---\n";
    obs::summaryTable().print(std::cout);
    if (!trace_path.empty() &&
        obs::writeChromeTraceFile(trace_path)) {
        std::cout << "[trace] " << trace_path << " ("
                  << obs::traceEventCount() << " spans)\n";
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string trace_path = obs::enableFromEnv();
    int argi = 1;
    for (; argi < argc; ++argi) {
        const std::string arg = argv[argi];
        if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
            obs::setEnabled(true);
        } else if (arg.rfind("--gemm-mode=", 0) == 0) {
            const std::string value = arg.substr(12);
            if (!perf::parseGemmMode(value, &g_perf_params.gemmMode)) {
                std::cerr << "unknown --gemm-mode '" << value << "'\n";
                return usage();
            }
        } else if (arg.rfind("--gemm-cache=", 0) == 0) {
            const std::string value = arg.substr(13);
            if (value != "on" && value != "off") {
                std::cerr << "unknown --gemm-cache '" << value << "'\n";
                return usage();
            }
            g_perf_params.cacheTileSimGemms = value == "on";
        } else {
            break;
        }
    }
    if (argi >= argc)
        return usage();
    const std::string cmd = argv[argi];
    std::vector<std::string> args(argv + argi + 1, argv + argc);
    try {
        const int rc = runCommand(cmd, args);
        reportObs(trace_path);
        return rc;
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    } catch (const std::invalid_argument &) {
        std::cerr << "error: numeric argument expected\n";
        return 2;
    }
}
