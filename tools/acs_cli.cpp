/**
 * @file
 * acs — the unified command-line front end.
 *
 * Subcommands:
 *   classify <tpp> <devbw_gbps> <area_mm2> [dc|consumer]
 *       Rule outcomes for a spec given on the command line.
 *   db [segment]
 *       Print the device catalogue (optionally one market segment).
 *   evaluate <config.kv> <workload>
 *       Evaluate a design file on a workload vs the A100 baseline.
 *   sweep <workload> <tpp>
 *       Run the Table-3 sweep and print compliant optima.
 *   dse <workload> [--space=...] [--shard=i/n] [--checkpoint=dir]
 *       Adaptive coarse-to-fine search (docs/DSE.md) over the Table 3,
 *       Table 5, or fine-grained space, with sharding, checkpoint/
 *       resume, and deterministic shard merge (--merge).
 *   metrics <config.kv>
 *       CTP / APP / TPP for a design file.
 *   serve-sim <workload> [device] [--rate=...] [--seed=N] ...
 *       Request-level serving simulation: latency-vs-load percentile
 *       curve and optional percentile-aware fleet sizing.
 *   help
 *
 * The global option --trace=<file> (or the ACS_TRACE environment
 * variable) records counters and spans during the command, prints a
 * per-stage summary, and writes a Chrome-trace JSON to <file>.
 * --gemm-mode={analytic,tile_sim,cycle_sim} selects the GEMM latency
 * model for the evaluate/sweep commands, and --gemm-cache={on,off}
 * toggles the sweep-scoped cross-design GEMM cache in the simulating
 * modes — output is byte-identical either way (docs/PERF.md).
 */

#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coevo/arms_race.hh"
#include "core/acs.hh"

using namespace acs;

namespace {

/** Model constants shared by evaluate/sweep; set by global options. */
perf::PerfParams g_perf_params;

int
usage()
{
    std::cout <<
        "usage: acs [--trace=<file>] [--gemm-mode=<mode>]\n"
        "           [--gemm-cache=on|off] <command> [args]\n"
        "  classify <tpp> <devbw_gbps> <area_mm2> [dc|consumer]\n"
        "  db [data-center|consumer|workstation]\n"
        "  evaluate <config.kv> <gpt3|llama|llama70b|mixtral>\n"
        "  sweep <gpt3|llama|llama70b|mixtral> <tpp>\n"
        "  dse <gpt3|llama|llama70b|mixtral> [--space=table3|table5|fine]\n"
        "      [--tpp=<n>] [--shard=<i>/<n>] [--checkpoint=<dir>]\n"
        "      [--ckpt-every=<points>] [--max-evals=<points>] [--merge]\n"
        "  coevo [--rounds=<n>] [--collateral-budget=<frac>]\n"
        "        [--mechanism=threshold|firmware] [--seed=<n>]\n"
        "        [--workload=gpt3|llama|llama70b|mixtral]\n"
        "  metrics <config.kv>\n"
        "  serve-sim <gpt3|llama|llama70b|mixtral> [device]\n"
        "            [--rate=r1,r2,...] [--seed=<n>]\n"
        "            [--slo-p99=<ttft_s>,<tbt_s>] [--demand=<req/s>]\n"
        "            [--prompt=<len>] [--output=<len>] [--horizon=<s>]\n"
        "            [--fleet=dev:count,...] [--disagg]\n"
        "            [--routing=jsq|phase-affinity|cost-weighted]\n"
        "            [--trace=<requests.csv>]\n"
        "            [--diurnal=<peak_trough>,<period_s>]\n"
        "    [device] is a100|a800|h100|h20 or a config.kv path\n"
        "    (default a100). --rate sets per-replica offered loads for\n"
        "    the latency-vs-load curve; --demand adds percentile-aware\n"
        "    fleet sizing for that aggregate rate with the closed-form\n"
        "    cross-check (docs/SERVING.md).\n"
        "    --fleet switches to cluster mode (docs/DATACENTER.md):\n"
        "    each dev:count entry is a pool of identical replicas, all\n"
        "    serving one stream under the --routing policy. --disagg\n"
        "    makes the first pool prefill-only and the second\n"
        "    decode-only with KV transfer charged between them.\n"
        "    Arrivals come from --trace (arrival_s,prompt,output CSV\n"
        "    rows), the --diurnal generator, or a Poisson stream at\n"
        "    --demand req/s.\n"
        "dse runs the adaptive coarse-to-fine engine (docs/DSE.md):\n"
        "    --space picks the design space (default table3 at --tpp,\n"
        "    fine is the ~1.7e8-point space), --shard=<i>/<n> restricts\n"
        "    this process to shard i of n (outer-cell ranges),\n"
        "    --checkpoint=<dir> enables snapshot/resume (the canonical\n"
        "    shard-<i>-of-<n>.ckpt file; an existing file is resumed),\n"
        "    --ckpt-every sets the snapshot cadence in evaluated\n"
        "    points, --max-evals stops early (wave-aligned; resume\n"
        "    continues), and --merge merges all <n> completed shard\n"
        "    checkpoints and reports the global optima instead of\n"
        "    searching.\n"
        "coevo runs the regulator-vs-designer arms race over the\n"
        "    parameterized rule family (docs/POLICY.md): N rounds of\n"
        "    designer best response (adaptive escape-space search) vs\n"
        "    regulator tightening under a gaming-segment collateral\n"
        "    budget; --mechanism=firmware swaps in the offline-\n"
        "    licensing throughput cap.\n"
        "--trace=<file> (or ACS_TRACE=<file>) records observability\n"
        "counters/spans and writes Chrome-trace JSON to <file>.\n"
        "--gemm-mode=analytic|tile_sim|cycle_sim picks the GEMM\n"
        "latency model for evaluate/sweep (default analytic; see\n"
        "docs/PERF.md).\n"
        "--gemm-cache=on|off toggles the simulating modes' sweep-\n"
        "scoped GEMM cache (default on; byte-identical output either\n"
        "way).\n";
    return 2;
}

hw::HardwareConfig
loadConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    return hw::configFromKeyVal(KeyVal::parse(buf.str()));
}

int
cmdClassify(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return usage();
    policy::DeviceSpec spec;
    spec.name = "cli-device";
    spec.tpp = std::stod(args[0]);
    spec.deviceBandwidthGBps = std::stod(args[1]);
    spec.dieAreaMm2 = std::stod(args[2]);
    spec.market = args.size() > 3 && args[3] == "consumer"
                      ? policy::MarketSegment::CONSUMER
                      : policy::MarketSegment::DATA_CENTER;

    Table t({"rule", "classification"});
    t.addRow({"Oct 2022", toString(policy::Oct2022Rule::classify(spec))});
    t.addRow({"Oct 2023 (as marketed)",
              toString(policy::Oct2023Rule::classify(spec))});
    t.addRow({"Oct 2023 (if DC)",
              toString(policy::Oct2023Rule::classifyAs(
                  spec, policy::MarketSegment::DATA_CENTER))});
    t.print(std::cout);
    if (spec.tpp < policy::Oct2023Rule::TPP_LICENSE) {
        const double floor =
            policy::Oct2023Rule::minUnregulatedDieArea(spec.tpp);
        if (floor > 0.0) {
            std::cout << "unregulated above " << fmt(floor, 1)
                      << " mm^2 of applicable die area\n";
        }
    }
    return 0;
}

int
cmdDb(const std::vector<std::string> &args)
{
    const devices::Database db;
    Table t({"device", "released", "market", "TPP", "PD",
             "mem", "Oct 2023"});
    for (const auto &rec : db.all()) {
        if (!args.empty() && toString(rec.market) != args[0])
            continue;
        t.addRow({rec.name,
                  std::to_string(rec.releaseYear) + "-" +
                      (rec.releaseMonth < 10 ? "0" : "") +
                      std::to_string(rec.releaseMonth),
                  toString(rec.market), fmt(rec.tpp, 0),
                  fmt(rec.toSpec().perfDensity()),
                  fmt(rec.memCapacityGB, 0) + "GB@" +
                      fmt(rec.memBandwidthGBps, 0),
                  toString(policy::Oct2023Rule::classify(
                      rec.toSpec()))});
    }
    t.print(std::cout);
    std::cout << t.rowCount() << " devices\n";
    return 0;
}

int
cmdEvaluate(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const hw::HardwareConfig cfg = loadConfig(args[0]);
    const core::Workload workload = core::workloadByName(args[1]);
    const core::SanctionsStudy study(g_perf_params);
    const core::DesignReport report =
        study.evaluateDesign(cfg, workload);

    Table t({"metric", cfg.name, "modeled A100", "delta"});
    t.addRow({"TTFT/layer (ms)",
              fmt(units::toMs(report.design.ttftS), 2),
              fmt(units::toMs(report.baseline.ttftS), 2),
              fmtPercent(report.ttftDelta())});
    t.addRow({"TBT/layer (ms)",
              fmt(units::toMs(report.design.tbtS), 4),
              fmt(units::toMs(report.baseline.tbtS), 4),
              fmtPercent(report.tbtDelta())});
    t.addRow({"TPP", fmt(report.design.tpp, 0),
              fmt(report.baseline.tpp, 0), ""});
    t.addRow({"die area (mm^2)", fmt(report.design.dieAreaMm2, 1),
              fmt(report.baseline.dieAreaMm2, 1), ""});
    t.addRow({"die cost ($)", fmt(report.design.dieCostUsd, 0),
              fmt(report.baseline.dieCostUsd, 0), ""});
    t.print(std::cout);
    std::cout << "Oct 2022: " << toString(report.rules.oct2022)
              << "; Oct 2023 DC: "
              << toString(report.rules.oct2023DataCenter) << "\n";
    return 0;
}

int
cmdSweep(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    const core::Workload workload = core::workloadByName(args[0]);
    const double tpp = std::stod(args[1]);
    const core::SanctionsStudy study(g_perf_params);
    const auto baseline = study.evaluateBaseline(workload);
    const auto designs = study.runSweep(
        dse::table3Space(tpp, {500.0 * units::GBPS,
                               700.0 * units::GBPS,
                               900.0 * units::GBPS}),
        workload);
    const auto compliant =
        dse::filterOct2023Unregulated(dse::filterReticle(designs));
    std::cout << designs.size() << " designs, " << compliant.size()
              << " compliant+manufacturable\n";
    if (compliant.empty())
        return 0;
    const auto &fast = dse::minTtft(compliant);
    const auto &decode = dse::minTbt(compliant);
    std::cout << "best TTFT: " << fmt(units::toMs(fast.ttftS), 1)
              << " ms ("
              << fmtPercent(fast.ttftS / baseline.ttftS - 1.0)
              << " vs A100) [" << fast.config.name << "]\n";
    std::cout << "best TBT:  " << fmt(units::toMs(decode.tbtS), 4)
              << " ms ("
              << fmtPercent(decode.tbtS / baseline.tbtS - 1.0)
              << " vs A100) [" << decode.config.name << "]\n";
    return 0;
}

/** Resolve a dse --space= name (fatal on an unknown one). */
dse::SweepSpace
dseSpaceByName(const std::string &name, double tpp)
{
    if (name == "table3") {
        return dse::table3Space(tpp, {500.0 * units::GBPS,
                                      700.0 * units::GBPS,
                                      900.0 * units::GBPS});
    }
    if (name == "table5")
        return dse::table5Space();
    if (name == "fine")
        return dse::fineSpace(tpp);
    fatal("unknown --space '" + name + "' (table3|table5|fine)");
}

/** Merge completed shard checkpoints and report the global optima. */
int
runDseMerge(const core::Workload &workload, const dse::SweepSpace &space,
            const dse::AdaptiveConfig &acfg, const std::string &dir)
{
    const core::SanctionsStudy study(g_perf_params);
    const dse::DesignEvaluator evaluator(
        workload.model, workload.setting, workload.system,
        study.params());
    const dse::AdaptiveSearch search(evaluator, space, acfg);

    std::vector<dse::Checkpoint> shards;
    for (std::size_t i = 0; i < acfg.shard.count; ++i) {
        dse::ShardSpec s;
        s.index = i;
        s.count = acfg.shard.count;
        const std::string path = dse::checkpointShardFile(dir, s);
        dse::Checkpoint ck;
        fatalIf(!dse::readCheckpoint(path, &ck),
                "missing shard checkpoint " + path);
        shards.push_back(std::move(ck));
    }
    const dse::Checkpoint merged = dse::mergeShardCheckpoints(shards);

    // First-wins argmins over the kept set (points are index-sorted,
    // so strict < reproduces the exhaustive tie-break).
    const dse::CheckpointPoint *best_t = nullptr;
    const dse::CheckpointPoint *best_b = nullptr;
    std::size_t kept = 0;
    for (const dse::CheckpointPoint &p : merged.points) {
        if (!(p.flags & dse::POINT_KEPT))
            continue;
        ++kept;
        if (!best_t || p.ttftS < best_t->ttftS)
            best_t = &p;
        if (!best_b || p.tbtS < best_b->tbtS)
            best_b = &p;
    }
    const auto frontier = dse::frontierOfPoints(merged.points);

    std::cout << merged.points.size() << " points across "
              << acfg.shard.count << " shard(s), " << kept
              << " kept, frontier " << frontier.size() << "\n";
    if (best_t) {
        std::cout << "best TTFT: "
                  << fmt(units::toMs(best_t->ttftS), 3) << " ms ["
                  << search.plan().point(best_t->index).name << "]\n";
    }
    if (best_b) {
        std::cout << "best TBT:  "
                  << fmt(units::toMs(best_b->tbtS), 4) << " ms ["
                  << search.plan().point(best_b->index).name << "]\n";
    }
    return 0;
}

int
cmdDse(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const core::Workload workload = core::workloadByName(args[0]);

    std::string space_name = "table3";
    double tpp = 4800.0;
    std::string ckpt_dir;
    bool merge = false;
    dse::AdaptiveConfig acfg;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--space=", 0) == 0) {
            space_name = arg.substr(8);
        } else if (arg.rfind("--tpp=", 0) == 0) {
            tpp = std::stod(arg.substr(6));
        } else if (arg.rfind("--shard=", 0) == 0) {
            acfg.shard = dse::parseShardSpec(arg.substr(8));
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            ckpt_dir = arg.substr(13);
        } else if (arg.rfind("--ckpt-every=", 0) == 0) {
            acfg.checkpointEveryPoints = std::stoull(arg.substr(13));
        } else if (arg.rfind("--max-evals=", 0) == 0) {
            acfg.maxEvaluations = std::stoull(arg.substr(12));
        } else if (arg == "--merge") {
            merge = true;
        } else {
            std::cerr << "unknown dse option '" << arg << "'\n";
            return usage();
        }
    }

    const dse::SweepSpace space = dseSpaceByName(space_name, tpp);
    if (merge) {
        fatalIf(ckpt_dir.empty(), "--merge needs --checkpoint=<dir>");
        return runDseMerge(workload, space, acfg, ckpt_dir);
    }
    if (!ckpt_dir.empty())
        acfg.checkpointPath = dse::checkpointShardFile(ckpt_dir,
                                                       acfg.shard);

    const core::SanctionsStudy study(g_perf_params);
    const dse::AdaptiveResult res =
        study.runAdaptiveSweep(space, workload, acfg);

    Table t({"metric", "value"});
    t.addRow({"space points", std::to_string(res.spacePoints)});
    t.addRow({"shard",
              std::to_string(acfg.shard.index) + "/" +
                  std::to_string(acfg.shard.count) + " (" +
                  std::to_string(res.shardPoints) + " points)"});
    t.addRow({"evaluated", std::to_string(res.evaluated)});
    t.addRow({"fraction", fmtPercent(res.fractionEvaluated)});
    t.addRow({"kept", std::to_string(res.kept)});
    t.addRow({"waves", std::to_string(res.waves)});
    t.addRow({"frontier", std::to_string(res.frontier.size())});
    t.addRow({"complete", res.complete ? "yes" : "no (resumable)"});
    t.print(std::cout);
    if (res.bestTtft) {
        std::cout << "best TTFT: "
                  << fmt(units::toMs(res.bestTtft->ttftS), 3)
                  << " ms [" << res.bestTtft->config.name << "]\n";
    }
    if (res.bestTbt) {
        std::cout << "best TBT:  "
                  << fmt(units::toMs(res.bestTbt->tbtS), 4)
                  << " ms [" << res.bestTbt->config.name << "]\n";
    }
    return 0;
}

int
cmdCoevo(const std::vector<std::string> &args)
{
    coevo::ArmsRaceConfig cfg;
    for (const std::string &arg : args) {
        if (arg.rfind("--rounds=", 0) == 0) {
            cfg.rounds = std::stoi(arg.substr(9));
        } else if (arg.rfind("--collateral-budget=", 0) == 0) {
            cfg.collateralBudget = std::stod(arg.substr(20));
        } else if (arg.rfind("--mechanism=", 0) == 0) {
            cfg.mechanism = coevo::mechanismFromString(arg.substr(12));
        } else if (arg.rfind("--seed=", 0) == 0) {
            cfg.seed = std::stoull(arg.substr(7));
        } else if (arg.rfind("--workload=", 0) == 0) {
            cfg.workload = arg.substr(11);
        } else if (arg.rfind("--max-evals=", 0) == 0) {
            cfg.maxEvaluations = std::stoull(arg.substr(12));
        } else {
            std::cerr << "unknown coevo option '" << arg << "'\n";
            return usage();
        }
    }

    coevo::ArmsRace race(cfg);
    const coevo::ArmsRaceResult res = race.run();

    std::cout << "mechanism " << coevo::toString(cfg.mechanism)
              << ", collateral budget "
              << fmtPercent(cfg.collateralBudget) << ", workload "
              << cfg.workload << ", seed " << cfg.seed << "\n"
              << "unconstrained reference TTFT/TBT: "
              << fmt(units::toMs(res.referenceTtftS), 3) << " / "
              << fmt(units::toMs(res.referenceTbtS), 4) << " ms\n\n";

    Table t({"round", "regulator move", "rule", "best escape",
             "escaped perf", "collateral"});
    for (const auto &r : res.rounds) {
        t.addRow({std::to_string(r.round), r.moveLabel, r.ruleDesc,
                  r.designer.spaceLabel.empty() ? "-"
                                                : r.designer.spaceLabel,
                  fmtPercent(r.designer.escapedPerf),
                  fmtPercent(r.collateral)});
    }
    t.print(std::cout);

    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(res.fingerprint()));
    std::cout << "\nfixed point: "
              << (res.roundsToFixedPoint >= 0
                      ? "round " + std::to_string(res.roundsToFixedPoint)
                      : "not reached")
              << "\ndesigner best responses: "
              << std::to_string(res.bestResponses) << " ("
              << std::to_string(res.totalEvaluated) << " of "
              << std::to_string(res.totalSpacePoints)
              << " space points evaluated)\ntrajectory fingerprint: "
              << fp << "\n";
    return 0;
}

int
cmdMetrics(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const hw::HardwareConfig cfg = loadConfig(args[0]);
    const policy::MetricHistory h = policy::metricHistory(cfg);
    Table t({"metric", "value"});
    t.addRow({"CTP (MTOPS, 1991)", fmt(h.ctpMtops, 0)});
    t.addRow({"APP (WT, 2006)", fmt(h.appWt, 2)});
    t.addRow({"TPP (2022)", fmt(h.tpp, 0)});
    t.print(std::cout);
    return 0;
}

/** Split "a,b,c" into doubles (fatal on parse errors via stod). */
std::vector<double>
parseDoubleList(const std::string &text)
{
    std::vector<double> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(std::stod(item));
    return values;
}

/** Map a preset name or config.kv path to a device. */
hw::HardwareConfig
deviceByName(const std::string &name)
{
    if (name == "a100" || name == "a800" || name == "h100" ||
        name == "h20")
        return hw::presetByName(name);
    return loadConfig(name);
}

/** One --fleet entry: a device preset/path and a replica count. */
struct FleetEntry
{
    std::string device;
    int replicas = 1;
};

/** Parse "a100:4,h20:8" into fleet entries. */
std::vector<FleetEntry>
parseFleetSpec(const std::string &text)
{
    std::vector<FleetEntry> entries;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const std::size_t colon = item.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= item.size())
            fatal("--fleet entries must look like dev:count, got '" +
                  item + "'");
        FleetEntry e;
        e.device = item.substr(0, colon);
        e.replicas = std::stoi(item.substr(colon + 1));
        fatalIf(e.replicas < 1,
                "--fleet replica counts must be >= 1");
        entries.push_back(std::move(e));
    }
    fatalIf(entries.empty(), "--fleet needs at least one dev:count");
    return entries;
}

/** Cluster-mode options gathered from the serve-sim argument list. */
struct ClusterCliOptions
{
    std::vector<FleetEntry> fleet;
    bool disagg = false;
    sim::RoutingPolicyKind routing =
        sim::RoutingPolicyKind::JOIN_SHORTEST_QUEUE;
    std::string traceFile;
    bool diurnal = false;
    double peakToTrough = 3.0;
    double periodS = 3600.0;
};

/** Run serve-sim's cluster mode and print the report. */
int
runClusterSim(const core::Workload &workload,
              const core::ServingStudyConfig &scfg,
              const ClusterCliOptions &opts)
{
    const core::SanctionsStudy study(g_perf_params);

    // One cost oracle per fleet entry, kept alive for the whole run.
    std::deque<sim::IterationCostModel> oracles;
    sim::ClusterConfig cluster;
    for (std::size_t i = 0; i < opts.fleet.size(); ++i) {
        const FleetEntry &e = opts.fleet[i];
        const hw::HardwareConfig device = deviceByName(e.device);
        oracles.emplace_back(device, workload.model,
                             workload.setting, workload.system,
                             study.params());
        sim::PoolConfig pool;
        pool.name = e.device;
        pool.cost = &oracles.back();
        pool.replicas = e.replicas;
        pool.scheduler = scfg.scheduler;
        if (opts.disagg) {
            fatalIf(opts.fleet.size() != 2,
                    "--disagg expects exactly two --fleet entries "
                    "(prefill pool, decode pool)");
            pool.role = i == 0 ? sim::PoolRole::PREFILL
                               : sim::PoolRole::DECODE;
        }
        cluster.pools.push_back(pool);
    }
    cluster.routing = opts.routing;
    cluster.slo = scfg.slo.targets();

    std::unique_ptr<sim::TraceWorkload> trace;
    if (!opts.traceFile.empty()) {
        trace = sim::TraceWorkload::fromCsvFile(opts.traceFile);
    } else if (opts.diurnal) {
        fatalIf(scfg.fleetRatePerS <= 0.0,
                "--diurnal needs --demand=<req/s> as the mean rate");
        sim::DiurnalTraceSpec spec;
        spec.baseRatePerS = scfg.fleetRatePerS;
        spec.peakToTrough = opts.peakToTrough;
        spec.periodS = opts.periodS;
        spec.promptLen = scfg.promptLen;
        spec.outputLen = scfg.outputLen;
        spec.horizonS = scfg.horizonS;
        spec.seed = scfg.seed;
        trace = sim::TraceWorkload::diurnal(spec);
    } else {
        fatalIf(scfg.fleetRatePerS <= 0.0,
                "cluster mode needs --trace, --diurnal, or "
                "--demand=<req/s>");
        trace = sim::TraceWorkload::poisson(
            scfg.fleetRatePerS, scfg.promptLen, scfg.outputLen,
            scfg.horizonS, scfg.seed);
    }

    const sim::ClusterMetrics m =
        simulateCluster(cluster, *trace);

    std::cout << "cluster of " << cluster.pools.size()
              << " pool(s), routing "
              << sim::toString(opts.routing) << ", "
              << trace->produced() << " requests\n";
    Table pools({"pool", "role", "replicas", "prefills", "decodes",
                 "tokens"});
    for (const sim::PoolUsage &u : m.pools) {
        pools.addRow({u.name, sim::toString(u.role),
                      std::to_string(u.replicas),
                      std::to_string(u.routedPrefill),
                      std::to_string(u.routedDecode),
                      std::to_string(u.generatedTokens)});
    }
    pools.print(std::cout);

    Table t({"metric", "value"});
    t.addRow({"completed", std::to_string(m.completedRequests)});
    t.addRow({"TTFT p50 (s)", fmt(m.ttftPercentileS(50.0), 3)});
    t.addRow({"TTFT p99 (s)", fmt(m.ttftPercentileS(99.0), 3)});
    t.addRow({"TBT p50 (ms)",
              fmt(units::toMs(m.tbtPercentileS(50.0)), 2)});
    t.addRow({"TBT p99 (ms)",
              fmt(units::toMs(m.tbtPercentileS(99.0)), 2)});
    t.addRow({"attainment", fmt(100.0 * m.attainment(), 1) + "%"});
    t.addRow({"goodput tok/s", fmt(m.goodputTokensPerS(), 0)});
    if (m.kvTransfers > 0) {
        t.addRow({"KV transfers", std::to_string(m.kvTransfers)});
        t.addRow({"KV shipped (GB)",
                  fmt(m.kvBytesTransferred / 1e9, 2)});
        t.addRow({"KV mean transfer (ms)",
                  fmt(units::toMs(m.kvTransferTotalS /
                                  m.kvTransfers),
                      2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdServeSim(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const core::Workload workload = core::workloadByName(args[0]);
    hw::HardwareConfig cfg = hw::modeledA100();
    core::ServingStudyConfig scfg;
    ClusterCliOptions copts;

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--fleet=", 0) == 0) {
            copts.fleet = parseFleetSpec(arg.substr(8));
        } else if (arg == "--disagg") {
            copts.disagg = true;
        } else if (arg.rfind("--routing=", 0) == 0) {
            copts.routing =
                sim::parseRoutingPolicy(arg.substr(10));
        } else if (arg.rfind("--trace=", 0) == 0) {
            copts.traceFile = arg.substr(8);
        } else if (arg.rfind("--diurnal=", 0) == 0) {
            const auto parts = parseDoubleList(arg.substr(10));
            if (parts.size() != 2) {
                std::cerr
                    << "--diurnal expects <peak_trough>,<period_s>\n";
                return usage();
            }
            copts.diurnal = true;
            copts.peakToTrough = parts[0];
            copts.periodS = parts[1];
        } else if (arg.rfind("--rate=", 0) == 0) {
            scfg.ratesPerS = parseDoubleList(arg.substr(7));
        } else if (arg.rfind("--seed=", 0) == 0) {
            scfg.seed = std::stoull(arg.substr(7));
        } else if (arg.rfind("--slo-p99=", 0) == 0) {
            const auto bounds = parseDoubleList(arg.substr(10));
            if (bounds.size() != 2) {
                std::cerr << "--slo-p99 expects <ttft_s>,<tbt_s>\n";
                return usage();
            }
            scfg.slo.ttftP99MaxS = bounds[0];
            scfg.slo.tbtP99MaxS = bounds[1];
        } else if (arg.rfind("--demand=", 0) == 0) {
            scfg.fleetRatePerS = std::stod(arg.substr(9));
        } else if (arg.rfind("--prompt=", 0) == 0) {
            scfg.promptLen =
                sim::LengthDistribution::fixed(std::stoi(arg.substr(9)));
        } else if (arg.rfind("--output=", 0) == 0) {
            scfg.outputLen =
                sim::LengthDistribution::fixed(std::stoi(arg.substr(9)));
        } else if (arg.rfind("--horizon=", 0) == 0) {
            scfg.horizonS = std::stod(arg.substr(10));
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown serve-sim option '" << arg << "'\n";
            return usage();
        } else {
            cfg = deviceByName(arg);
        }
    }

    if (!copts.fleet.empty())
        return runClusterSim(workload, scfg, copts);
    fatalIf(copts.disagg || !copts.traceFile.empty() ||
                copts.diurnal,
            "--disagg/--trace/--diurnal require --fleet=dev:count,...");

    const core::SanctionsStudy study(g_perf_params);
    const core::ServingStudyResult result =
        study.runServingStudy(cfg, workload, scfg);

    std::cout << cfg.name << ", " << args[0] << ", seed " << scfg.seed
              << ", horizon " << fmt(scfg.horizonS, 0) << " s\n";
    if (!result.curve.empty()) {
        Table t({"req/s", "done", "TTFT p50 (s)", "TTFT p99 (s)",
                 "TBT p50 (ms)", "TBT p99 (ms)", "attain",
                 "goodput tok/s", "max queue"});
        for (const auto &p : result.curve) {
            t.addRow({fmt(p.ratePerS, 2), std::to_string(p.completed),
                      fmt(p.ttft.p50S, 3), fmt(p.ttft.p99S, 3),
                      fmt(units::toMs(p.tbt.p50S), 2),
                      fmt(units::toMs(p.tbt.p99S), 2),
                      fmt(100.0 * p.attainment, 1) + "%",
                      fmt(p.goodputTokensPerS, 0),
                      std::to_string(p.maxQueueDepth)});
        }
        t.print(std::cout);
    }

    if (result.fleetSized) {
        const auto &plan = result.fleet;
        std::cout << "fleet for " << fmt(scfg.fleetRatePerS, 2)
                  << " req/s at p99 SLO (TTFT "
                  << fmt(scfg.slo.ttftP99MaxS, 2) << " s, TBT "
                  << fmt(scfg.slo.tbtP99MaxS, 3) << " s):\n";
        if (plan.simulated.feasible) {
            std::cout << "  simulated: " << plan.simulated.replicas
                      << " replicas = " << plan.simulated.devices
                      << " devices (" << plan.simulated.probes
                      << " probes)\n";
        } else {
            std::cout << "  simulated: infeasible within search cap\n";
        }
        std::cout << "  closed form: " << plan.closedFormDevices
                  << " devices (steady-state mean)\n";
        if (plan.burstFactor() > 0.0) {
            std::cout << "  burst factor: "
                      << fmt(plan.burstFactor(), 2) << "x\n";
        }
    }
    return 0;
}

int
runCommand(const std::string &cmd, const std::vector<std::string> &args)
{
    const obs::TraceSpan span("cli." + cmd);
    if (cmd == "classify")
        return cmdClassify(args);
    if (cmd == "db")
        return cmdDb(args);
    if (cmd == "evaluate")
        return cmdEvaluate(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "dse")
        return cmdDse(args);
    if (cmd == "coevo")
        return cmdCoevo(args);
    if (cmd == "metrics")
        return cmdMetrics(args);
    if (cmd == "serve-sim")
        return cmdServeSim(args);
    return usage();
}

/** Print the observability summary and write the trace file, if on. */
void
reportObs(const std::string &trace_path)
{
    if (!obs::enabled())
        return;
    std::cout << "\n--- observability summary ---\n";
    obs::summaryTable().print(std::cout);
    if (!trace_path.empty() &&
        obs::writeChromeTraceFile(trace_path)) {
        std::cout << "[trace] " << trace_path << " ("
                  << obs::traceEventCount() << " spans)\n";
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string trace_path = obs::enableFromEnv();
    int argi = 1;
    for (; argi < argc; ++argi) {
        const std::string arg = argv[argi];
        if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
            obs::setEnabled(true);
        } else if (arg.rfind("--gemm-mode=", 0) == 0) {
            const std::string value = arg.substr(12);
            if (!perf::parseGemmMode(value, &g_perf_params.gemmMode)) {
                std::cerr << "unknown --gemm-mode '" << value
                          << "' (expected " << perf::gemmModeNames()
                          << ")\n";
                return usage();
            }
        } else if (arg.rfind("--gemm-cache=", 0) == 0) {
            const std::string value = arg.substr(13);
            if (value != "on" && value != "off") {
                std::cerr << "unknown --gemm-cache '" << value << "'\n";
                return usage();
            }
            g_perf_params.cacheTileSimGemms = value == "on";
        } else {
            break;
        }
    }
    if (argi >= argc)
        return usage();
    const std::string cmd = argv[argi];
    std::vector<std::string> args(argv + argi + 1, argv + argc);
    try {
        const int rc = runCommand(cmd, args);
        reportObs(trace_path);
        return rc;
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    } catch (const std::invalid_argument &) {
        std::cerr << "error: numeric argument expected\n";
        return 2;
    }
}
