#!/usr/bin/env python3
"""Warn-only GEMM-throughput diff for CI.

Compares a freshly measured results/BENCH_gemm.json against the
committed baseline and prints a warning when a mode's designs/second
regressed beyond a noise margin. Always exits 0: CI runners are
shared and noisy, so throughput deltas are advisory — the artifact
and the log line are the signal, the committed baseline the record.

Usage: compare_bench_gemm.py <baseline.json> <measured.json>
"""

import json
import sys

# Shared CI runners routinely swing this much; only flag beyond it.
NOISE_MARGIN = 0.30

METRICS = [
    "analytic_designs_per_s",
    "tile_sim_aggregated_designs_per_s",
    "tile_sim_legacy_walk_designs_per_s",
]


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <baseline.json> <measured.json>")
        return 0
    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
        with open(argv[2]) as f:
            measured = json.load(f)
    except (OSError, ValueError) as err:
        print(f"::warning::BENCH_gemm compare skipped: {err}")
        return 0

    for key in METRICS:
        base = baseline.get(key)
        meas = measured.get(key)
        if not base or not meas:
            print(f"::warning::BENCH_gemm compare: missing '{key}'")
            continue
        delta = meas / base - 1.0
        line = (f"{key}: baseline {base:.0f}/s, measured {meas:.0f}/s "
                f"({delta:+.1%})")
        if delta < -NOISE_MARGIN:
            print(f"::warning::GEMM throughput regression? {line}")
        else:
            print(line)

    speedup = measured.get("aggregated_speedup_vs_legacy_walk")
    if speedup is not None:
        line = f"aggregated vs legacy walk: {speedup:.1f}x"
        # The acceptance bar for the aggregation rewrite (ISSUE: >=10x).
        if speedup < 10.0:
            print(f"::warning::{line} (expected >= 10x)")
        else:
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
