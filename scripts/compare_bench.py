#!/usr/bin/env python3
"""Warn-only bench-throughput diff for CI.

Compares freshly measured results/BENCH_*.json files against their
committed baselines and prints a warning when a metric regressed
beyond a noise margin, or when a speedup falls under its acceptance
bar. Always exits 0: CI runners are shared and noisy, so throughput
deltas are advisory — the artifact and the log line are the signal,
the committed baseline the record.

Covers the bench suites emitted by bench/microbench:
  BENCH_gemm.json  (--gemm-only)  GEMM-mode sweep throughput
  BENCH_dse.json   (--dse-only)   DSE pipeline sweep throughput
  BENCH_cycle.json (--cycle-only) cycle-level engine throughput
  BENCH_sim.json   (--sim-only)   serving-simulator trace throughput
  BENCH_coevo.json (--coevo-only) arms-race best-response throughput
The suite is picked per file pair from the metrics present, so the
caller just passes matching (baseline, measured) pairs:

Usage: compare_bench.py <baseline.json> <measured.json> [<b2> <m2> ...]
"""

import json
import sys

# Shared CI runners routinely swing this much; only flag beyond it.
NOISE_MARGIN = 0.30

# Throughput metrics per suite (designs/second, higher is better).
SUITES = {
    "BENCH_gemm": [
        "analytic_designs_per_s",
        "tile_sim_aggregated_designs_per_s",
        "tile_sim_cached_designs_per_s",
        "tile_sim_legacy_walk_designs_per_s",
    ],
    "BENCH_dse": [
        "legacy_designs_per_s",
        "serial_designs_per_s",
        "pooled_designs_per_s",
        "streaming_designs_per_s",
        "adaptive_designs_per_s",
    ],
    "BENCH_cycle": [
        "naive_gemms_per_s",
        "coalesced_gemms_per_s",
        "cycle_cold_designs_per_s",
        "cycle_cached_designs_per_s",
    ],
    "BENCH_sim": [
        "legacy_requests_per_s",
        "fast_requests_per_s",
        "fast_events_per_s",
    ],
    "BENCH_coevo": [
        "designer_best_responses_per_s",
    ],
}

# Speedup acceptance bars: (metric, floor, label). Measured-side only;
# each encodes the ISSUE bar its optimization shipped under.
BARS = {
    "BENCH_gemm": [
        ("aggregated_speedup_vs_legacy_walk", 10.0,
         "aggregated vs legacy walk"),
        ("cached_speedup_vs_aggregated", 5.0,
         "cached vs aggregated"),
    ],
    "BENCH_dse": [
        ("streaming_speedup_vs_legacy", 2.0,
         "streaming vs legacy"),
        ("adaptive_speedup_vs_streaming", 10.0,
         "adaptive (effective) vs streaming"),
    ],
    "BENCH_cycle": [
        ("coalesced_speedup_vs_naive", 10.0,
         "coalesced CYCLE_SIM vs naive per-cycle tick"),
    ],
    "BENCH_sim": [
        ("fast_speedup_vs_legacy", 10.0,
         "fast sim path vs legacy heap+map"),
    ],
    "BENCH_coevo": [],
}

# Absolute rate floors: (metric, floor/s, label). A full designer best
# response is an AdaptiveSearch over the whole escape portfolio, so a
# collapsing rate means the adaptive inner loop degraded to something
# closer to an exhaustive sweep. Floor is ~15x under the committed
# baseline to ride out shared-runner noise.
FLOORS = {
    "BENCH_gemm": [],
    "BENCH_dse": [],
    "BENCH_cycle": [],
    "BENCH_sim": [],
    "BENCH_coevo": [
        ("designer_best_responses_per_s", 20.0,
         "designer best responses"),
    ],
}

# Ceilings: (metric, max, label) — lower is better. Warn-only, like
# the speedup bars; today only the adaptive engine's evaluated
# fraction (its exactness tests assert < 0.30 on the Table 3 spaces,
# and the fine space should prune far harder).
CEILINGS = {
    "BENCH_gemm": [],
    "BENCH_cycle": [],
    "BENCH_sim": [],
    "BENCH_dse": [
        ("fraction_evaluated", 0.30, "adaptive fraction evaluated"),
    ],
    # Predicated escape spaces prune less than the predicate-free DSE
    # spaces (corner seeding keeps compliant pockets reachable), so the
    # ceiling is looser than BENCH_dse's.
    "BENCH_coevo": [
        ("fraction_evaluated", 0.60,
         "escape-portfolio fraction evaluated"),
    ],
}


def suite_of(data):
    """The suite whose metrics the measurement actually carries."""
    for name, metrics in SUITES.items():
        if any(key in data for key in metrics):
            return name
    return None


def compare_pair(baseline_path, measured_path):
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(measured_path) as f:
            measured = json.load(f)
    except (OSError, ValueError) as err:
        print(f"::warning::bench compare skipped: {err}")
        return

    suite = suite_of(measured)
    if suite is None:
        print(f"::warning::{measured_path}: no known bench metrics")
        return
    print(f"-- {suite} ({measured_path})")

    for key in SUITES[suite]:
        base = baseline.get(key)
        meas = measured.get(key)
        if not base or not meas:
            # Baselines predating a metric (e.g. the cached row) are
            # expected right after the metric ships; just note it.
            print(f"::warning::{suite} compare: missing '{key}'")
            continue
        delta = meas / base - 1.0
        line = (f"{key}: baseline {base:.0f}/s, measured {meas:.0f}/s "
                f"({delta:+.1%})")
        if delta < -NOISE_MARGIN:
            print(f"::warning::{suite} throughput regression? {line}")
        else:
            print(line)

    for key, floor, label in BARS[suite]:
        speedup = measured.get(key)
        if speedup is None:
            continue
        line = f"{label}: {speedup:.1f}x"
        if speedup < floor:
            print(f"::warning::{line} (expected >= {floor:g}x)")
        else:
            print(line)

    for key, floor, label in FLOORS[suite]:
        rate = measured.get(key)
        if rate is None:
            continue
        line = f"{label}: {rate:.1f}/s"
        if rate < floor:
            print(f"::warning::{line} (expected >= {floor:g}/s)")
        else:
            print(line)

    for key, ceiling, label in CEILINGS[suite]:
        value = measured.get(key)
        if value is None:
            continue
        line = f"{label}: {value:.4f}"
        if value > ceiling:
            print(f"::warning::{line} (expected <= {ceiling:g})")
        else:
            print(line)

    size = measured.get("frontier_size")
    if size is not None:
        print(f"adaptive frontier size: {size}")

    # Informational (never warned on): cache efficacy and the replay
    # coverage of the coalesced cycle engine — useful trend lines, but
    # both are workload-shaped rather than pure implementation cost.
    rate = measured.get("gemm_cache_hit_rate")
    if rate is not None:
        print(f"gemm cache hit rate: {rate:.4f}")
    fraction = measured.get("replayed_tile_fraction")
    if fraction is not None:
        print(f"replayed tile fraction: {fraction:.4f}")
    for key in ("threshold_final_escaped_perf",
                "firmware_final_escaped_perf",
                "threshold_rounds_to_fixed_point",
                "firmware_rounds_to_fixed_point"):
        value = measured.get(key)
        if value is not None:
            print(f"{key}: {value:g}")


def main(argv):
    if len(argv) < 3 or len(argv) % 2 != 1:
        print(f"usage: {argv[0]} <baseline.json> <measured.json> "
              "[<baseline2.json> <measured2.json> ...]")
        return 0
    for i in range(1, len(argv), 2):
        compare_pair(argv[i], argv[i + 1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
