#!/usr/bin/env python3
"""Re-plot the paper's figures from the bench CSV outputs.

The figure benches write their datasets to results/*.csv; this script
turns them into PNGs mirroring the paper's figures. Run from the
directory containing results/ (the working directory the benches ran
in):

    for b in build/bench/fig*; do $b; done
    python3 scripts/plot_figures.py

Requires matplotlib; degrades to a listing of available CSVs when it
is missing.
"""

import csv
import os
import sys

RESULTS = "results"
OUT = os.path.join(RESULTS, "plots")


def read_csv(name):
    path = os.path.join(RESULTS, name)
    if not os.path.exists(path):
        return None
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def fnum(row, key):
    return float(row[key].rstrip("%x"))


def plot_dse(plt, name, title):
    rows = read_csv(name + ".csv")
    if not rows:
        return
    fig, axes = plt.subplots(1, 3, figsize=(15, 4))
    area = [fnum(r, "die_area_mm2") for r in rows]
    ttft = [fnum(r, "ttft_ms") for r in rows]
    tbt = [fnum(r, "tbt_ms") for r in rows]
    ok = [r["under_reticle"] == "1" for r in rows]

    def scatter(ax, xs, ys, xlabel, ylabel):
        ax.scatter([x for x, o in zip(xs, ok) if not o],
                   [y for y, o in zip(ys, ok) if not o],
                   s=12, c="lightgray", label="over reticle")
        ax.scatter([x for x, o in zip(xs, ok) if o],
                   [y for y, o in zip(ys, ok) if o],
                   s=12, c="tab:blue", label="manufacturable")
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)

    scatter(axes[0], area, ttft, "Die Area (mm^2)", "TTFT (ms)")
    scatter(axes[1], area, tbt, "Die Area (mm^2)", "TBT (ms)")
    scatter(axes[2], ttft, tbt, "TTFT (ms)", "TBT (ms)")
    axes[0].legend(fontsize=8)
    fig.suptitle(title)
    fig.tight_layout()
    out = os.path.join(OUT, name + ".png")
    fig.savefig(out, dpi=150)
    print("wrote", out)


def plot_fig05(plt):
    tpp = read_csv("fig05_tpp_sweep.csv")
    bw = read_csv("fig05_bw_sweep.csv")
    if not tpp or not bw:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot([fnum(r, "TTFT (ms)") for r in tpp],
            [fnum(r, "TBT (ms)") for r in tpp], "o-",
            label="TPP sweep (BW < 600 GB/s)")
    ax.plot([fnum(r, "TTFT (ms)") for r in bw],
            [fnum(r, "TBT (ms)") for r in bw], "s-",
            label="BW sweep (TPP < 4800)")
    ax.set_xlabel("Time to First Token (ms)")
    ax.set_ylabel("Time Between Tokens (ms)")
    ax.set_title("Figure 5: Oct 2022 scaling knobs (GPT-3 175B)")
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = os.path.join(OUT, "fig05.png")
    fig.savefig(out, dpi=150)
    print("wrote", out)


def plot_devices(plt):
    rows = read_csv("fig01b_devices.csv")
    if not rows:
        return
    fig, ax = plt.subplots(figsize=(7, 5))
    colors = {"not-applicable": "tab:gray",
              "nac-eligible": "tab:orange",
              "license-required": "tab:red"}
    for cls, color in colors.items():
        pts = [r for r in rows if r["classification"] == cls]
        ax.scatter([fnum(r, "PD") for r in pts],
                   [fnum(r, "TPP") for r in pts], s=18, c=color,
                   label=cls)
    ax.set_xlabel("Performance Density (TPP/mm^2)")
    ax.set_ylabel("Total Processing Performance")
    ax.set_xlim(0, 12)
    ax.set_ylim(0, 7000)
    ax.set_title("Figure 1b: Oct 2023 device classification")
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = os.path.join(OUT, "fig01b.png")
    fig.savefig(out, dpi=150)
    print("wrote", out)


def main():
    if not os.path.isdir(RESULTS):
        sys.exit("no results/ directory — run the figure benches first")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; available CSVs:")
        for name in sorted(os.listdir(RESULTS)):
            print(" ", name)
        return
    os.makedirs(OUT, exist_ok=True)

    plot_devices(plt)
    plot_fig05(plt)
    for model in ("gpt_3_175b", "llama_3_8b"):
        plot_dse(plt, f"fig06_{model}",
                 f"Figure 6: Oct 2022 DSE ({model})")
        for tpp in (1600, 2400, 4800):
            plot_dse(plt, f"fig07_{model}_{tpp}tpp",
                     f"Figure 7: Oct 2023 DSE, {tpp} TPP ({model})")


if __name__ == "__main__":
    main()
