/**
 * @file
 * Figure 11: TTFT/TBT latency distributions for the 4800-TPP designs
 * of the Fig. 7 DSE (reticle-filtered), grouped by one fixed
 * architectural parameter per column (Sec. 5.3).
 *
 * Paper: "1 Lane" narrows TTFT distributions 5x (GPT-3) / 3.3x
 * (Llama); "2.8 TB/s memory BW" narrows TBT 20.6x / 10.7x; fixing
 * device bandwidth narrows almost nothing.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

void
runWorkload(const core::SanctionsStudy &study,
            const core::Workload &workload)
{
    std::cout << "\n#### Workload: " << workload.model.name << " ####\n";

    const dse::SweepSpace space = dse::table3Space(
        4800.0, {500.0 * units::GBPS, 700.0 * units::GBPS,
                 900.0 * units::GBPS});
    const auto designs =
        dse::filterReticle(study.runSweep(space, workload));
    std::cout << "reticle-compliant 4800-TPP designs: " << designs.size()
              << "\n\n";

    using policy::ArchParameter;
    const std::vector<std::pair<
        std::string, std::function<bool(const dse::EvaluatedDesign &)>>>
        groups = {
            {"1 Lane", dse::fixedParameter(
                           ArchParameter::LANES_PER_CORE, 1.0)},
            {"1024 KB L1", dse::fixedParameter(
                               ArchParameter::L1_PER_CORE,
                               1024.0 * units::KIB)},
            {"48 MB L2", dse::fixedParameter(ArchParameter::L2_SIZE,
                                             48.0 * units::MIB)},
            {"2.8 TB/s M. BW", dse::fixedParameter(
                                   ArchParameter::MEM_BANDWIDTH,
                                   2.8 * units::TBPS)},
            {"500 GB/s D. BW", dse::fixedParameter(
                                   ArchParameter::DEVICE_BANDWIDTH,
                                   500.0 * units::GBPS)},
        };

    const auto dists = dse::indicatorStudy(designs, groups);

    Table t({"group", "designs", "TTFT med (ms)", "TTFT range",
             "TTFT narrowing", "TBT med (ms)", "TBT range",
             "TBT narrowing"});
    for (const auto &d : dists) {
        t.addRow({d.label, std::to_string(d.designCount),
                  fmt(d.ttft.median), fmt(d.ttft.range()),
                  fmt(d.ttftNarrowing, 1) + "x", fmt(d.tbt.median, 4),
                  fmt(d.tbt.range(), 4), fmt(d.tbtNarrowing, 1) + "x"});
    }
    t.print(std::cout);
    bench::writeCsv("fig11_" + bench::slug(workload.model.name), t);
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 11",
                  "Latency distributions for 4800-TPP designs grouped "
                  "by fixed architectural parameters");
    const core::SanctionsStudy study;
    runWorkload(study, core::gpt3Workload());
    runWorkload(study, core::llamaWorkload());
    std::cout << "\npaper: GPT-3 '1 Lane' narrows TTFT 5x (Llama 3.3x); "
                 "'2.8 TB/s' narrows TBT 20.6x (Llama 10.7x); fixing "
                 "device BW narrows TTFT only ~6-15% and TBT "
                 "negligibly.\n";
    return 0;
}
