/**
 * @file
 * Extension bench (Sec. 2.2): the regulatory cat-and-mouse timeline.
 *
 * For every catalogue device, compare its status under the Oct 2022
 * and Oct 2023 rules and bucket the transitions — newly sanctioned
 * (the A800/H800 story), still sanctioned, never sanctioned, and the
 * regulation-specific SKUs designed into each regime.
 *
 * The compliance-SKU genealogy rows come from coevo/escape.hh — the
 * same module the closed-loop arms race (ext_coevo_arms_race) builds
 * its escape portfolio from, so probe and engine cannot drift.
 */

#include "bench_util.hh"

#include "coevo/escape.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: rule evolution",
                  "Device status transitions, Oct 2022 -> Oct 2023");

    const devices::Database db;

    Table t({"device", "released", "Oct 2022", "Oct 2023",
             "transition"});
    int newly = 0, still = 0, never = 0, escaped = 0;
    for (const auto &rec : db.all()) {
        const auto spec = rec.toSpec();
        const bool r22 =
            policy::isRegulated(policy::Oct2022Rule::classify(spec));
        const bool r23 =
            policy::isRegulated(policy::Oct2023Rule::classify(spec));
        std::string transition;
        if (!r22 && r23) {
            transition = "NEWLY SANCTIONED";
            ++newly;
        } else if (r22 && r23) {
            transition = "still sanctioned";
            ++still;
        } else if (r22 && !r23) {
            transition = "escaped";
            ++escaped;
        } else {
            transition = "never";
            ++never;
        }
        if (transition != "never") {
            t.addRow({rec.name,
                      std::to_string(rec.releaseYear) + "-" +
                          (rec.releaseMonth < 10 ? "0" : "") +
                          std::to_string(rec.releaseMonth),
                      toString(policy::Oct2022Rule::classify(spec)),
                      toString(policy::Oct2023Rule::classify(spec)),
                      transition});
        }
    }
    t.print(std::cout);

    std::cout << "\nsummary: " << still << " still sanctioned, "
              << newly << " newly sanctioned by Oct 2023, " << escaped
              << " escaped, " << never << " never regulated of "
              << db.size() << "\n";

    // The compliance SKU genealogy the paper narrates (Sec. 2.2).
    std::cout << "\nCompliance-SKU genealogy:\n";
    Table g({"sanctioned flagship", "regulation-specific SKU",
             "knob turned", "SKU status under Oct 2023"});
    auto status = [&](const char *name) {
        return toString(
            policy::Oct2023Rule::classify(db.byName(name)->toSpec()));
    };
    for (const coevo::ComplianceSku &sku :
         coevo::complianceSkuGenealogy())
        g.addRow({sku.flagship, sku.sku, sku.knob, status(sku.sku)});
    g.print(std::cout);

    std::cout << "\nShape (Sec. 2.2): the Oct-2022 workarounds (A800/"
                 "H800) are exactly the devices the Oct-2023 update "
                 "re-captured, and every post-update SKU complies by "
                 "cutting TPP rather than bandwidth.\n";
    return 0;
}
