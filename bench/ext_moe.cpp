/**
 * @file
 * Extension bench: mixture-of-experts models under the ACRs.
 *
 * The paper's introduction motivates the sanctions with
 * trillion-parameter (MoE) models; this bench shows that MoE decode is
 * even more memory-bandwidth-dominated than dense decode (every
 * decode step streams all touched experts' weights for a handful of
 * tokens each), so the architecture-first memory-bandwidth policy of
 * Sec. 5.3 binds MoE inference harder than TPP ever could.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: mixture-of-experts",
                  "Dense vs MoE sensitivity to the Sec. 5.3 policy "
                  "knobs");

    const model::InferenceSetting setting;
    const perf::SystemConfig sys{4};

    struct Entry
    {
        const char *label;
        model::TransformerConfig cfg;
    };
    const Entry entries[] = {
        {"Llama 3 8B (dense)", model::llama3_8b()},
        {"Mixtral 8x7B (MoE top-2)", model::mixtral_8x7b()},
    };

    // Knob A: TPP cap (the ACR's lever).
    hw::HardwareConfig a100 = hw::modeledA100();
    hw::HardwareConfig low_tpp = hw::modeledA100();
    low_tpp.coreCount = hw::coresForTpp(2400.0, 16, 16, 4,
                                        low_tpp.clockHz);
    // Knob B: memory-bandwidth cap (the architecture-first lever).
    hw::HardwareConfig low_bw = hw::modeledA100();
    low_bw.memBandwidth = 0.8 * units::TBPS;

    Table t({"model", "A100 TBT (ms)", "TPP/2 TBT", "TPP effect",
             "0.8TB/s TBT", "mem-BW effect"});
    for (const Entry &e : entries) {
        const double base = units::toMs(
            perf::InferenceSimulator(a100).run(e.cfg, setting, sys)
                .tbtS);
        const double tpp_capped = units::toMs(
            perf::InferenceSimulator(low_tpp).run(e.cfg, setting, sys)
                .tbtS);
        const double bw_capped = units::toMs(
            perf::InferenceSimulator(low_bw).run(e.cfg, setting, sys)
                .tbtS);
        t.addRow({e.label, fmt(base, 4), fmt(tpp_capped, 4),
                  fmtPercent(tpp_capped / base - 1.0),
                  fmt(bw_capped, 4),
                  fmtPercent(bw_capped / base - 1.0)});
    }
    t.print(std::cout);
    bench::writeCsv("ext_moe", t);

    // Memory footprint: MoE trades capacity for active compute.
    std::cout << "\nWeights per device (TP=4, FP16):\n";
    Table w({"model", "total params", "weights/device (GB)",
             "active params/token"});
    for (const Entry &e : entries) {
        const double params =
            static_cast<double>(e.cfg.totalParams());
        double active = params;
        if (e.cfg.isMoe()) {
            const double expert =
                3.0 * e.cfg.modelDim * e.cfg.ffnDim;
            active = params -
                     e.cfg.numLayers *
                         (e.cfg.numExperts - e.cfg.expertsPerToken) *
                         expert;
        }
        w.addRow({e.label, fmt(params / 1e9, 1) + "B",
                  fmt(params * 2 / 4 / units::GB, 1),
                  fmt(active / 1e9, 1) + "B"});
    }
    w.print(std::cout);

    std::cout << "\nShape: halving TPP barely moves either model's "
                 "decode, but capping memory bandwidth hits the MoE "
                 "hardest — for the model class the sanctions actually "
                 "target, the architecture-first bandwidth lever is "
                 "the binding one.\n";
    return 0;
}
