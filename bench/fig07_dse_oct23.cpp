/**
 * @file
 * Figure 7: the October 2023 design space exploration at TPP targets
 * 1600/2400/4800 (Table 3 parameters + device BW {500,700,900} GB/s;
 * 1536 designs per TPP).
 *
 * Paper headlines: every 4800-TPP design violates performance density;
 * the fastest PD-compliant 2400-TPP TTFT is ~79%/55% slower than the
 * A100 (GPT-3/Llama); decode can still improve ~21-26% (GPT-3) and
 * ~12-13% (Llama) because memory bandwidth is unregulated.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

void
runWorkload(const core::SanctionsStudy &study,
            const core::Workload &workload)
{
    std::cout << "\n#### Workload: " << workload.model.name << " ####\n";
    const auto baseline = study.evaluateBaseline(workload);

    ScatterPlot p_ttft(workload.model.name + " prefill vs die area",
                       "Die Area (mm^2)", "TTFT (ms)");
    ScatterPlot p_tbt(workload.model.name + " decoding vs die area",
                      "Die Area (mm^2)", "TBT (ms)");
    const char glyphs[3] = {'1', '2', '4'}; // 1600 / 2400 / 4800 TPP

    int idx = 0;
    for (double tpp : {1600.0, 2400.0, 4800.0}) {
        const dse::SweepSpace space = dse::table3Space(
            tpp, {500.0 * units::GBPS, 700.0 * units::GBPS,
                  900.0 * units::GBPS});
        const auto designs = study.runSweep(space, workload);
        bench::writeCsv("fig07_" + bench::slug(workload.model.name) +
                            "_" + fmt(tpp, 0) + "tpp",
                        bench::designTable(designs));
        const auto manufacturable = dse::filterReticle(designs);
        const auto compliant = dse::filterOct2023Unregulated(
            manufacturable);

        std::size_t pd_violations = 0;
        for (const auto &d : designs) {
            if (policy::Oct2023Rule::classify(d.toSpec()) !=
                policy::Classification::NOT_APPLICABLE) {
                ++pd_violations;
            }
        }

        ScatterSeries valid{fmt(tpp, 0) + " TPP ok", glyphs[idx], {},
                            {}};
        ScatterSeries invalid{fmt(tpp, 0) + " TPP invalid", '.', {}, {}};
        ScatterSeries valid_tbt = valid, invalid_tbt = invalid;
        for (const auto &d : designs) {
            const bool ok =
                d.underReticle &&
                policy::Oct2023Rule::classify(d.toSpec()) ==
                    policy::Classification::NOT_APPLICABLE;
            auto &st = ok ? valid : invalid;
            st.xs.push_back(d.dieAreaMm2);
            st.ys.push_back(units::toMs(d.ttftS));
            auto &sb = ok ? valid_tbt : invalid_tbt;
            sb.xs.push_back(d.dieAreaMm2);
            sb.ys.push_back(units::toMs(d.tbtS));
        }
        p_ttft.addSeries(invalid);
        p_ttft.addSeries(valid);
        p_tbt.addSeries(invalid_tbt);
        p_tbt.addSeries(valid_tbt);
        ++idx;

        std::cout << "\nTPP " << fmt(tpp, 0) << ": " << designs.size()
                  << " designs, " << pd_violations
                  << " regulated (PD), "
                  << designs.size() - manufacturable.size()
                  << " over reticle, " << compliant.size()
                  << " valid (unregulated + manufacturable)\n";
        if (compliant.empty()) {
            std::cout << "  -> no compliant design exists (paper: all "
                         "4800 TPP designs are invalid)\n";
            continue;
        }
        const auto &fast_ttft = dse::minTtft(compliant);
        const auto &fast_tbt = dse::minTbt(compliant);
        std::cout << "  fastest compliant TTFT: "
                  << fmt(units::toMs(fast_ttft.ttftS)) << " ms ("
                  << fmtPercent(fast_ttft.ttftS / baseline.ttftS - 1.0)
                  << " vs A100)\n";
        std::cout << "  fastest compliant TBT:  "
                  << fmt(units::toMs(fast_tbt.tbtS), 4) << " ms ("
                  << fmtPercent(fast_tbt.tbtS / baseline.tbtS - 1.0)
                  << " vs A100)\n";
    }

    p_ttft.addSeries({"modeled A100", 'A', {baseline.dieAreaMm2},
                      {units::toMs(baseline.ttftS)}});
    p_tbt.addSeries({"modeled A100", 'A', {baseline.dieAreaMm2},
                     {units::toMs(baseline.tbtS)}});
    p_ttft.print(std::cout);
    p_tbt.print(std::cout);

    std::cout << "\npaper: fastest compliant 2400-TPP TTFT +78.8% "
                 "(GPT-3) / +54.6% (Llama); fastest TBT -20.9%/-26.1% "
                 "(GPT-3 @1600/2400) and -12.0%/-12.8% (Llama).\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::header("Figure 7",
                  "Oct 2023 DSE at TPP in {1600, 2400, 4800}");
    const perf::PerfParams params = bench::perfParamsFromArgs(argc, argv);
    std::cout << "gemm mode: " << perf::toString(params.gemmMode) << "\n";
    const core::SanctionsStudy study(params);
    runWorkload(study, core::gpt3Workload());
    runWorkload(study, core::llamaWorkload());
    return 0;
}
