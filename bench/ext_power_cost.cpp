/**
 * @file
 * Extension bench (Sec. 4.4): power and operating-cost consequences of
 * the performance-density floor.
 *
 * The PD-compliant 2400-TPP design carries ~1.6x the SRAM and die area
 * of its equal-performance non-compliant twin; this bench quantifies
 * the resulting static power and the multi-year electricity bill the
 * paper alludes to ("if all are turned on, these caches increase
 * static and dynamic power which increase operating costs").
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: power & operating cost",
                  "Sec. 4.4 — the electricity bill of PD compliance");

    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const auto designs = dse::filterReticle(study.runSweep(
        dse::table3Space(2400.0, {500.0 * units::GBPS,
                                  700.0 * units::GBPS,
                                  900.0 * units::GBPS}),
        workload));

    std::vector<dse::EvaluatedDesign> ok, bad;
    for (const auto &d : designs) {
        (policy::Oct2023Rule::classify(d.toSpec()) ==
                 policy::Classification::NOT_APPLICABLE
             ? ok
             : bad)
            .push_back(d);
    }
    if (ok.empty() || bad.empty()) {
        std::cout << "missing group; cannot run\n";
        return 1;
    }

    const auto &compliant = dse::minTtft(ok);
    // Equal-performance non-compliant twin (as in Table 4).
    const dse::EvaluatedDesign *twin = nullptr;
    for (const auto &d : bad) {
        if (d.ttftS > compliant.ttftS * 1.02)
            continue;
        if (!twin || d.dieAreaMm2 < twin->dieAreaMm2)
            twin = &d;
    }
    if (!twin)
        twin = &dse::minTtft(bad);

    const area::PowerModel power_model;
    const area::ActivityProfile serving{0.35, 0.6, 4.0};

    auto report = [&](const dse::EvaluatedDesign &d) {
        const auto p = power_model.power(d.config, serving);
        return p;
    };
    const auto p_c = report(compliant);
    const auto p_n = report(*twin);

    Table t({"quantity", "PD compliant", "non-compliant", "ratio"});
    auto row = [&](const std::string &label, double a, double b,
                   int prec = 1) {
        t.addRow({label, fmt(a, prec), fmt(b, prec),
                  fmt(b != 0.0 ? a / b : 0.0, 2) + "x"});
    };
    const double sram_c = (compliant.config.coreCount *
                               compliant.config.l1BytesPerCore +
                           compliant.config.l2Bytes) /
                          units::MIB;
    const double sram_n =
        (twin->config.coreCount * twin->config.l1BytesPerCore +
         twin->config.l2Bytes) /
        units::MIB;
    row("die area (mm^2)", compliant.dieAreaMm2, twin->dieAreaMm2, 0);
    row("on-chip SRAM (MiB)", sram_c, sram_n, 0);
    row("SRAM leakage (W)", p_c.sramLeakageW, p_n.sramLeakageW);
    row("logic leakage (W)", p_c.logicLeakageW, p_n.logicLeakageW);
    row("static power (W)", p_c.staticW(), p_n.staticW());
    row("dynamic power (W)", p_c.dynamicW(), p_n.dynamicW());
    row("total power (W)", p_c.totalW(), p_n.totalW());
    const double opex_c =
        area::PowerModel::operatingCostUsdPerYear(p_c.totalW());
    const double opex_n =
        area::PowerModel::operatingCostUsdPerYear(p_n.totalW());
    row("electricity ($/yr)", opex_c, opex_n, 0);
    row("3-yr TCO: good die + power ($)",
        compliant.goodDieCostUsd + 3.0 * opex_c,
        twin->goodDieCostUsd + 3.0 * opex_n, 0);
    t.print(std::cout);

    std::cout << "\nShape (Sec. 4.4): the compliance silicon is not "
                 "free even after purchase — the SRAM padding shows up "
                 "as static power on every deployed device.\n";
    return 0;
}
