/**
 * @file
 * Extension bench (Sec. 5.4 case study): sweep AI-oriented and
 * gaming-oriented designs against the gaming-focused architecture
 * policy and show the selectivity frontier — compliant designs lose
 * little gaming FPS but much LLM decode throughput.
 *
 * The systolic-dim and memory-bandwidth grids come from
 * coevo/escape.hh — the same lists the closed-loop arms race
 * (ext_coevo_arms_race) searches, so probe and engine cannot drift.
 */

#include "bench_util.hh"

#include "coevo/escape.hh"

using namespace acs;

namespace {

struct Candidate
{
    hw::HardwareConfig cfg;
    bool compliant = false;
    double fps = 0.0;
    double tbtMs = 0.0;
};

} // anonymous namespace

int
main()
{
    bench::header("Extension: gaming-focused policy",
                  "Sec. 5.4 — architecturally self-limiting gaming "
                  "devices");

    const policy::ArchPolicy policy = policy::ArchPolicy::gamingFocused();
    const model::GraphicsWorkload game =
        model::GraphicsWorkload::aaa1440p();
    const model::InferenceSetting setting;

    // Sweep systolic dims x memory bandwidth at fixed ~4800 TPP and
    // fixed SIMT (vector) resources.
    std::vector<Candidate> candidates;
    for (int dim : coevo::gamingEscapeDims()) {
        for (double mem_tbps : coevo::gamingEscapeMemTbps()) {
            hw::HardwareConfig cfg = hw::modeledA100();
            cfg.systolicDimX = dim;
            cfg.systolicDimY = dim;
            cfg.coreCount =
                hw::coresForTpp(4800.0, dim, dim, 4, cfg.clockHz);
            if (cfg.coreCount < 1)
                continue;
            cfg.memBandwidth = mem_tbps * units::TBPS;
            cfg.name = std::to_string(dim) + "x" + std::to_string(dim) +
                       "-" + fmt(mem_tbps, 1) + "T";

            Candidate c;
            c.cfg = cfg;
            c.compliant = policy.compliant(cfg);
            c.fps = perf::GraphicsModel(cfg).frameTime(game).fps();
            c.tbtMs = units::toMs(
                perf::InferenceSimulator(cfg)
                    .run(model::llama3_8b(), setting,
                         perf::SystemConfig{1})
                    .tbtS);
            candidates.push_back(c);
        }
    }

    Table t({"design", "policy", "AAA 1440p FPS", "Llama TBT (ms)"});
    for (const auto &c : candidates) {
        t.addRow({c.cfg.name, c.compliant ? "compliant" : "violates",
                  fmt(c.fps, 0), fmt(c.tbtMs, 3)});
    }
    t.print(std::cout);

    // Selectivity headline: best compliant vs best overall.
    double best_fps_all = 0.0, best_fps_ok = 0.0;
    double best_tbt_all = 1e9, best_tbt_ok = 1e9;
    for (const auto &c : candidates) {
        best_fps_all = std::max(best_fps_all, c.fps);
        best_tbt_all = std::min(best_tbt_all, c.tbtMs);
        if (c.compliant) {
            best_fps_ok = std::max(best_fps_ok, c.fps);
            best_tbt_ok = std::min(best_tbt_ok, c.tbtMs);
        }
    }
    std::cout << "\nSelectivity of the policy:\n"
              << "  gaming FPS retained by compliant designs:  "
              << fmtPercent(best_fps_ok / best_fps_all, 1) << "\n"
              << "  LLM decode slowdown forced on compliant designs: "
              << fmtPercent(best_tbt_ok / best_tbt_all - 1.0, 1)
              << "\n"
              << "Shape: near-100% gaming retention with a large AI "
                 "penalty — the policy binds only the workload of "
                 "interest.\n";
    return 0;
}
