/**
 * @file
 * Ablation bench: closed-form GEMM model vs the wave-level tile
 * simulator on the layer's operator shapes — the cross-validation of
 * the performance substrate DESIGN.md promises.
 */

#include <sstream>

#include "bench_util.hh"

using namespace acs;

namespace {

void
compareGraph(const hw::HardwareConfig &cfg,
             const model::LayerGraph &graph)
{
    const perf::MatmulModel analytic(cfg, perf::PerfParams{});
    Table t({"op", "m x n x k (batch)", "closed form (us)",
             "tile sim (us)", "ratio", "waves"});
    for (const model::Op &op : graph.ops) {
        if (op.kind != model::OpKind::MATMUL)
            continue;
        const double a = analytic.time(op).totalS;
        const perf::GemmTrace trace = perf::simulateGemm(cfg, op);
        std::ostringstream shape;
        shape << op.mm.m << "x" << op.mm.n << "x" << op.mm.k << " ("
              << op.mm.batchCount << ")";
        t.addRow({op.name, shape.str(), fmt(a * 1e6, 1),
                  fmt(trace.totalS * 1e6, 1),
                  fmt(trace.totalS / a, 2),
                  std::to_string(trace.waves.size())});
    }
    t.print(std::cout);
}

} // anonymous namespace

int
main()
{
    bench::header("Ablation: GEMM model cross-validation",
                  "Closed-form roofline vs wave-level schedule "
                  "simulation (modeled A100)");

    const hw::HardwareConfig cfg = hw::modeledA100();
    const model::InferenceSetting setting;

    std::cout << "\n-- GPT-3 175B prefill layer (TP=4) --\n";
    compareGraph(cfg, model::buildPrefillGraph(model::gpt3_175b(),
                                               setting, 4));
    std::cout << "\n-- GPT-3 175B decode layer (TP=4) --\n";
    compareGraph(cfg, model::buildDecodeGraph(model::gpt3_175b(),
                                              setting, 4));
    std::cout << "\n-- Llama 3 8B decode layer (TP=4) --\n";
    compareGraph(cfg, model::buildDecodeGraph(model::llama3_8b(),
                                              setting, 4));

    std::cout << "\nReading: ratios near 1.0 mean the closed form's "
                 "amortized roofline matches the explicit wave "
                 "schedule; deviations above 1 come from remainder "
                 "tiles and fetch/compute skew the closed form "
                 "averages away.\n";
    return 0;
}
