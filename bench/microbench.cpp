/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: one
 * design evaluation, a full Table-3 sweep, and rule classification.
 */

#include <benchmark/benchmark.h>

#include "core/acs.hh"

using namespace acs;

namespace {

void
BM_EvaluateDesign(benchmark::State &state)
{
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const dse::DesignEvaluator evaluator(workload.model,
                                         workload.setting,
                                         workload.system);
    const hw::HardwareConfig cfg = hw::modeledA100();
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluator.evaluate(cfg));
    }
}
BENCHMARK(BM_EvaluateDesign);

void
BM_Table3Sweep(benchmark::State &state)
{
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    for (auto _ : state) {
        benchmark::DoNotOptimize(study.runSweep(space, workload));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(space.size()));
}
BENCHMARK(BM_Table3Sweep);

void
BM_ClassifyDatabase(benchmark::State &state)
{
    const devices::Database db;
    const auto specs = db.allSpecs();
    for (auto _ : state) {
        for (const auto &spec : specs) {
            benchmark::DoNotOptimize(
                policy::Oct2023Rule::classify(spec));
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_ClassifyDatabase);

void
BM_PrefillGraphBuild(benchmark::State &state)
{
    const auto cfg = model::gpt3_175b();
    const model::InferenceSetting setting;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model::buildPrefillGraph(cfg, setting, 4));
    }
}
BENCHMARK(BM_PrefillGraphBuild);

} // anonymous namespace

BENCHMARK_MAIN();
