/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: one
 * design evaluation, a full Table-3 sweep, and rule classification —
 * plus a sweep-throughput section (--dse / --dse-only) comparing the
 * legacy per-batch-thread pipeline against the shared-pool and
 * streaming paths and the adaptive coarse-to-fine engine, emitting
 * results/BENCH_dse.json, and a GEMM-mode
 * section (--gemm / --gemm-only) comparing TILE_SIM sweep evaluation
 * under the aggregated fast path vs the legacy per-tile wave walk,
 * emitting results/BENCH_gemm.json, a cycle-level section
 * (--cycle / --cycle-only) comparing the event-coalesced CYCLE_SIM
 * engine (with tile-class replay) against the naive per-cycle
 * LEGACY_TICK reference and timing a GemmCache-warm fig06-scale
 * cycle-mode sweep, emitting results/BENCH_cycle.json, and a
 * serving-simulator section
 * (--sim / --sim-only) replaying a trace-scale diurnal request stream
 * through the fast path (calendar queue, flat memos, streaming
 * histograms) vs the legacy path (binary heap, map memos, sort-based
 * rollups), emitting results/BENCH_sim.json, and a policy
 * co-evolution section (--coevo / --coevo-only) timing full
 * regulator-vs-designer arms races for both mechanisms, emitting
 * results/BENCH_coevo.json (designer best-responses/s,
 * evaluated fraction, rounds to fixed point).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coevo/arms_race.hh"
#include "common/thread_pool.hh"
#include "core/acs.hh"
#include "perf/gemm_cache.hh"

using namespace acs;

namespace {

void
BM_EvaluateDesign(benchmark::State &state)
{
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const dse::DesignEvaluator evaluator(workload.model,
                                         workload.setting,
                                         workload.system);
    const hw::HardwareConfig cfg = hw::modeledA100();
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluator.evaluate(cfg));
    }
}
BENCHMARK(BM_EvaluateDesign);

void
BM_Table3Sweep(benchmark::State &state)
{
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    for (auto _ : state) {
        benchmark::DoNotOptimize(study.runSweep(space, workload));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(space.size()));
}
BENCHMARK(BM_Table3Sweep);

void
BM_ClassifyDatabase(benchmark::State &state)
{
    const devices::Database db;
    const auto specs = db.allSpecs();
    for (auto _ : state) {
        for (const auto &spec : specs) {
            benchmark::DoNotOptimize(
                policy::Oct2023Rule::classify(spec));
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_ClassifyDatabase);

void
BM_PrefillGraphBuild(benchmark::State &state)
{
    const auto cfg = model::gpt3_175b();
    const model::InferenceSetting setting;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model::buildPrefillGraph(cfg, setting, 4));
    }
}
BENCHMARK(BM_PrefillGraphBuild);

// ---- DSE sweep throughput (designs/second) ---------------------------------

/**
 * The seed implementation formatted every validation message eagerly
 * (fourteen string concatenations per validate() call, several calls
 * per design); reproduce that cost so the legacy baseline reflects
 * what the pre-optimization pipeline actually spent.
 */
void
legacyEagerValidate(const hw::HardwareConfig &cfg)
{
    volatile std::size_t sink = 0;
    for (const char *suffix :
         {": coreCount must be >= 1", ": lanesPerCore must be >= 1",
          ": systolic array dims must be >= 1",
          ": vectorWidth must be >= 1", ": clockHz must be > 0",
          ": opBitwidth must be >= 1", ": L1 size must be > 0",
          ": L2 size must be > 0", ": HBM capacity must be > 0",
          ": HBM bandwidth must be > 0", ": PHY count must be >= 0",
          ": PHY bandwidth must be >= 0",
          ": diesPerPackage must be >= 1"}) {
        sink += (cfg.name + suffix).size();
    }
}

/**
 * Faithful reconstruction of the pre-optimization evaluate(): layer
 * graphs rebuilt for every design, op-shape memoization off, the
 * performance density recomputed from a second full area breakdown,
 * eager validation-message formatting at every model construction,
 * and VectorModel's former throwaway inner MatmulModel (it built one
 * just to read the global-buffer bandwidth).
 */
dse::EvaluatedDesign
legacyEvaluate(const hw::HardwareConfig &cfg, const core::Workload &w,
               const area::AreaModel &area_model,
               const area::CostModel &cost_model,
               const perf::PerfParams &params)
{
    // Simulator ctor + 3 model ctors + inner MatmulModel + area
    // breakdown each validated eagerly in the seed.
    for (int i = 0; i < 6; ++i)
        legacyEagerValidate(cfg);
    const perf::MatmulModel throwaway(cfg, params);
    benchmark::DoNotOptimize(throwaway.globalBufferBandwidth());

    dse::EvaluatedDesign d;
    d.config = cfg;
    d.tpp = cfg.tpp();
    d.dieAreaMm2 = area_model.dieArea(cfg);
    d.perfDensity = area_model.perfDensity(cfg);
    d.underReticle = d.dieAreaMm2 <= area::RETICLE_LIMIT_MM2;
    if (cost_model.diesPerWafer(d.dieAreaMm2) > 0) {
        d.dieCostUsd = cost_model.dieCostUsd(d.dieAreaMm2, cfg.process);
        d.goodDieCostUsd =
            cost_model.goodDieCostUsd(d.dieAreaMm2, cfg.process);
    }
    const perf::InferenceSimulator sim(cfg, params);
    const perf::InferenceResult result =
        sim.run(w.model, w.setting, w.system);
    d.ttftS = result.ttftS;
    d.tbtS = result.tbtS;
    return d;
}

/** Legacy parallel batch: a fresh std::thread crew per call. */
std::vector<dse::EvaluatedDesign>
legacyEvaluateAllParallel(const std::vector<hw::HardwareConfig> &cfgs,
                          const core::Workload &w, unsigned threads)
{
    perf::PerfParams params;
    params.memoizeOps = false;
    const area::AreaModel area_model;
    const area::CostModel cost_model;
    std::vector<dse::EvaluatedDesign> out(cfgs.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < cfgs.size();
             i = next.fetch_add(1)) {
            out[i] = legacyEvaluate(cfgs[i], w, area_model, cost_model,
                                    params);
        }
    };
    std::vector<std::thread> crew;
    crew.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        crew.emplace_back(worker);
    for (std::thread &t : crew)
        t.join();
    return out;
}

/** Best designs/second over @p reps repetitions of @p run. */
template <typename Fn>
double
bestThroughput(std::size_t designs, int reps, Fn &&run)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        best = std::max(best, designs / s);
    }
    return best;
}

void
runDseThroughput(int reps)
{
    // The Fig. 6 space and workload: GPT-3 175B, TPP 4800, 600 GB/s.
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    const auto cfgs = space.generate();
    const dse::DesignEvaluator evaluator(workload.model,
                                         workload.setting,
                                         workload.system);
    constexpr unsigned THREADS = 8;

    std::cout << "\nDSE sweep throughput (fig06 space, "
              << cfgs.size() << " designs, " << THREADS
              << " threads, best of " << reps << ")\n";

    // Each row times the full pipeline from the SweepSpace, which is
    // what core::SanctionsStudy::runSweep pays: the materializing rows
    // include generate(), the streaming row fuses point-building into
    // its workers.
    const double legacy = bestThroughput(cfgs.size(), reps, [&] {
        legacyEvaluateAllParallel(space.generate(), workload, THREADS);
    });
    const double serial = bestThroughput(cfgs.size(), reps, [&] {
        evaluator.evaluateAll(space.generate());
    });
    const double pooled = bestThroughput(cfgs.size(), reps, [&] {
        evaluator.evaluateAllParallel(space.generate(), THREADS);
    });
    const double streaming = bestThroughput(cfgs.size(), reps, [&] {
        evaluator.evaluateStream(space, nullptr, nullptr, THREADS);
    });

    // Adaptive coarse-to-fine search (docs/DSE.md) over the fine
    // space: the rate is EFFECTIVE designs/second — space covered per
    // wall-clock second — because the engine prunes instead of
    // evaluating every point. fractionEvaluated reports how much it
    // actually computed.
    const dse::SweepSpace fine = dse::fineSpace();
    dse::AdaptiveConfig acfg;
    acfg.threads = THREADS;
    dse::AdaptiveResult adaptive_res;
    const double adaptive =
        bestThroughput(dse::SweepPlan(fine).pointCount(), reps, [&] {
            dse::AdaptiveSearch search(evaluator, fine, acfg);
            adaptive_res = search.run();
        });

    const auto row = [](const char *name, double v, double base) {
        std::cout << "  " << name << ": " << static_cast<long>(v)
                  << " designs/s (" << v / base << "x legacy)\n";
    };
    row("legacy   ", legacy, legacy);
    row("serial   ", serial, legacy);
    row("pooled   ", pooled, legacy);
    row("streaming", streaming, legacy);
    std::cout << "  adaptive : " << static_cast<long>(adaptive)
              << " effective designs/s ("
              << adaptive / streaming << "x streaming; fine space, "
              << adaptive_res.evaluated << " of "
              << adaptive_res.spacePoints << " evaluated)\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_dse.json");
    out << "{\n"
        << "  \"space\": \"table3/fig06\",\n"
        << "  \"designs\": " << cfgs.size() << ",\n"
        << "  \"threads\": " << THREADS << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"legacy_designs_per_s\": " << legacy << ",\n"
        << "  \"serial_designs_per_s\": " << serial << ",\n"
        << "  \"pooled_designs_per_s\": " << pooled << ",\n"
        << "  \"streaming_designs_per_s\": " << streaming << ",\n"
        << "  \"pooled_speedup_vs_legacy\": " << pooled / legacy
        << ",\n"
        << "  \"streaming_speedup_vs_legacy\": " << streaming / legacy
        << ",\n"
        << "  \"adaptive_space\": \"fine\",\n"
        << "  \"adaptive_space_designs\": "
        << adaptive_res.spacePoints << ",\n"
        << "  \"adaptive_evaluated\": " << adaptive_res.evaluated
        << ",\n"
        << "  \"fraction_evaluated\": "
        << adaptive_res.fractionEvaluated << ",\n"
        << "  \"frontier_size\": " << adaptive_res.frontier.size()
        << ",\n"
        << "  \"adaptive_designs_per_s\": " << adaptive << ",\n"
        << "  \"adaptive_speedup_vs_streaming\": "
        << adaptive / streaming << "\n"
        << "}\n";
    std::cout << "[json] results/BENCH_dse.json\n";
}

// ---- TILE_SIM GEMM-mode throughput -----------------------------------------

/**
 * Designs/second for full TILE_SIM-mode sweep evaluation on the
 * Fig. 6 space: the aggregated wave-class fast path vs the retained
 * legacy per-tile walk (plus the analytic mode for scale). All
 * TILE_SIM rows produce bit-identical results — the suites in
 * tests/test_gemm_property.cpp and tests/test_dse.cpp prove it — so
 * this measures pure implementation cost.
 *
 * The cached row measures the steady state of a session-scoped
 * perf::GemmCache installed through PerfParams::gemmCache: the cache
 * persists across repetitions, so after the warm-up rep every GEMM is
 * a hit and the sweep pays only key derivation plus the non-GEMM
 * models. That is the cost profile of the sweep drivers' own hoisted
 * per-sweep cache on any space with a populated comm-only axis (the
 * fig06 space has a single deviceBandwidth, so its within-sweep reuse
 * comes only from design pairs that share a compute projection).
 */
void
runGemmThroughput(int reps)
{
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    const auto cfgs = space.generate();
    constexpr unsigned THREADS = 8;

    perf::PerfParams analytic_params;
    perf::PerfParams fast_params;
    fast_params.gemmMode = perf::GemmMode::TILE_SIM;
    // The uncached rows measure pure engine cost: without this the
    // evaluator's default hoisted per-sweep cache (cacheTileSimGemms)
    // would fold cross-design reuse into them and the cached row's
    // speedup would be measured against a partially cached baseline.
    fast_params.cacheTileSimGemms = false;
    perf::PerfParams legacy_params = fast_params;
    legacy_params.tileSimEngine = perf::TileSimEngine::LEGACY_WALK;
    perf::GemmCache session_cache;
    perf::PerfParams cached_params = fast_params;
    cached_params.gemmCache = &session_cache;

    const dse::DesignEvaluator analytic(workload.model, workload.setting,
                                        workload.system, analytic_params);
    const dse::DesignEvaluator fast(workload.model, workload.setting,
                                    workload.system, fast_params);
    const dse::DesignEvaluator legacy(workload.model, workload.setting,
                                      workload.system, legacy_params);
    const dse::DesignEvaluator cached(workload.model, workload.setting,
                                      workload.system, cached_params);

    std::cout << "\nGEMM-mode sweep throughput (fig06 space, "
              << cfgs.size() << " designs, " << THREADS
              << " threads, best of " << reps << ")\n";

    const double legacy_walk = bestThroughput(cfgs.size(), reps, [&] {
        legacy.evaluateAllParallel(cfgs, THREADS);
    });
    const double aggregated = bestThroughput(cfgs.size(), reps, [&] {
        fast.evaluateAllParallel(cfgs, THREADS);
    });
    // Warm the session cache outside the timed reps so even a
    // single-rep run (--dse-reps=1) reports the steady state.
    cached.evaluateAllParallel(cfgs, THREADS);
    const double cached_mode = bestThroughput(cfgs.size(), reps, [&] {
        cached.evaluateAllParallel(cfgs, THREADS);
    });
    const perf::GemmCache::Stats cache_stats = session_cache.stats();
    const double analytic_mode = bestThroughput(cfgs.size(), reps, [&] {
        analytic.evaluateAllParallel(cfgs, THREADS);
    });

    const auto row = [&](const char *name, double v) {
        std::cout << "  " << name << ": " << static_cast<long>(v)
                  << " designs/s (" << v / legacy_walk
                  << "x legacy walk)\n";
    };
    row("tile_sim legacy walk", legacy_walk);
    row("tile_sim aggregated ", aggregated);
    row("tile_sim cached     ", cached_mode);
    row("analytic            ", analytic_mode);
    std::cout << "  gemm cache: " << cache_stats.entries << " entries, "
              << cache_stats.hits << " hits / " << cache_stats.misses
              << " misses (hit rate " << cache_stats.hitRate() << ")\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_gemm.json");
    out << "{\n"
        << "  \"space\": \"table3/fig06\",\n"
        << "  \"designs\": " << cfgs.size() << ",\n"
        << "  \"threads\": " << THREADS << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"tile_sim_legacy_walk_designs_per_s\": " << legacy_walk
        << ",\n"
        << "  \"tile_sim_aggregated_designs_per_s\": " << aggregated
        << ",\n"
        << "  \"tile_sim_cached_designs_per_s\": " << cached_mode
        << ",\n"
        << "  \"analytic_designs_per_s\": " << analytic_mode << ",\n"
        << "  \"aggregated_speedup_vs_legacy_walk\": "
        << aggregated / legacy_walk << ",\n"
        << "  \"cached_speedup_vs_aggregated\": "
        << cached_mode / aggregated << ",\n"
        << "  \"gemm_cache_hit_rate\": " << cache_stats.hitRate()
        << "\n"
        << "}\n";
    std::cout << "[json] results/BENCH_gemm.json\n";
}

// ---- CYCLE_SIM throughput --------------------------------------------------

/**
 * The two speed claims behind the cycle-level backend (docs/PERF.md):
 *
 *  1. Per-GEMM, the event-coalesced engine (with tile-class replay)
 *     must beat the naive per-cycle LEGACY_TICK reference by a wide
 *     margin on representative llama-shaped GEMMs — the randomized
 *     property suite in tests/test_cycle_sim.cpp proves the two are
 *     bit-identical, so this measures pure implementation cost. The
 *     compare_bench.py bar is >= 10x; the shapes below sit around
 *     30-50x.
 *
 *  2. Per-sweep, CYCLE_SIM must stay tractable on a fig06-scale
 *     space through the session perf::GemmCache (mode-aware key):
 *     after one cold pass every repeated (config, GEMM) pair is a
 *     hit, so the warm rate approaches the non-GEMM evaluation cost.
 *     The cold rate is also reported; replay is what keeps it usable.
 */
void
runCycleThroughput(int reps)
{
    const hw::HardwareConfig cfg = hw::modeledA100();

    // Representative GEMM shapes (llama 3 8B TP=1): decode
    // projections, a prefill block, and a batched decode attention
    // score. Small enough that the naive tick engine finishes in CI,
    // large enough that coalescing and replay both engage.
    const auto shape = [](long m, long n, long k, long batch) {
        model::Op op;
        op.name = "bench-gemm";
        op.kind = model::OpKind::MATMUL;
        op.mm = {m, n, k, batch, true};
        op.flops = 2.0 * batch * m * n * k;
        op.weightBytes = 2.0 * batch * k * n;
        op.inputBytes = 2.0 * batch * m * k;
        op.outputBytes = 2.0 * batch * m * n;
        return op;
    };
    const std::vector<model::Op> shapes = {
        shape(32, 6144, 4096, 1),     // decode qkv-proj
        shape(32, 4096, 14336, 1),    // decode ffn-down
        shape(32, 28672, 4096, 1),    // decode ffn-gate-up
        shape(2048, 4096, 4096, 1),   // prefill block
        shape(1, 2560, 128, 1024),    // batched decode attn-score
    };

    perf::PerfParams coalesced_params;
    coalesced_params.gemmMode = perf::GemmMode::CYCLE_SIM;
    perf::PerfParams naive_params = coalesced_params;
    naive_params.cycleEngine = perf::CycleEngine::LEGACY_TICK;

    std::cout << "\nCYCLE_SIM engine throughput (" << shapes.size()
              << " GEMM shapes, best of " << reps << ")\n";

    const double naive = bestThroughput(shapes.size(), reps, [&] {
        for (const model::Op &op : shapes)
            benchmark::DoNotOptimize(
                perf::simulateGemmCycles(cfg, op, naive_params));
    });
    const double coalesced = bestThroughput(shapes.size(), reps, [&] {
        for (const model::Op &op : shapes)
            benchmark::DoNotOptimize(
                perf::simulateGemmCycles(cfg, op, coalesced_params));
    });
    std::int64_t total_tiles = 0;
    std::int64_t replayed_tiles = 0;
    for (const model::Op &op : shapes) {
        const perf::CycleStats st =
            perf::simulateGemmCycles(cfg, op, coalesced_params);
        total_tiles += st.totalTiles;
        replayed_tiles += st.replayedTiles;
    }
    const double replay_fraction =
        total_tiles > 0
            ? static_cast<double>(replayed_tiles) / total_tiles
            : 0.0;

    // Fig06-scale cycle-mode sweep on the cheapest workload (llama 3
    // 8B TP=1): a subset of the space keeps the cold warm-up pass
    // inside the CI budget; the cached rate is the steady state a
    // full-space sweep pays per design once the session cache is hot.
    const core::Workload workload = core::llamaWorkload();
    auto cfgs =
        dse::table3Space(4800.0, {600.0 * units::GBPS}).generate();
    cfgs.resize(std::min<std::size_t>(cfgs.size(), 32));
    constexpr unsigned THREADS = 8;

    perf::GemmCache session_cache;
    perf::PerfParams cycle_params = coalesced_params;
    cycle_params.gemmCache = &session_cache;
    perf::SystemConfig system = workload.system;
    system.tensorParallel = 1;
    const dse::DesignEvaluator cycle(workload.model, workload.setting,
                                     system, cycle_params);

    // The cold pass doubles as cache warm-up, so even --dse-reps=1
    // reports the steady state for the cached row.
    const double cold = bestThroughput(cfgs.size(), 1, [&] {
        cycle.evaluateAllParallel(cfgs, THREADS);
    });
    const double cached = bestThroughput(cfgs.size(), reps, [&] {
        cycle.evaluateAllParallel(cfgs, THREADS);
    });
    const perf::GemmCache::Stats cache_stats = session_cache.stats();

    std::cout << "  naive tick    : " << naive << " gemms/s\n"
              << "  coalesced     : " << coalesced << " gemms/s ("
              << coalesced / naive << "x naive)\n"
              << "  replayed tiles: " << replay_fraction
              << " of " << total_tiles << "\n"
              << "  sweep cold    : " << cold << " designs/s ("
              << cfgs.size() << " designs, " << THREADS
              << " threads)\n"
              << "  sweep cached  : " << cached << " designs/s\n"
              << "  gemm cache    : " << cache_stats.entries
              << " entries, " << cache_stats.hits << " hits / "
              << cache_stats.misses << " misses (hit rate "
              << cache_stats.hitRate() << ")\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_cycle.json");
    out << "{\n"
        << "  \"space\": \"table3/fig06 subset\",\n"
        << "  \"designs\": " << cfgs.size() << ",\n"
        << "  \"gemm_shapes\": " << shapes.size() << ",\n"
        << "  \"threads\": " << THREADS << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"naive_gemms_per_s\": " << naive << ",\n"
        << "  \"coalesced_gemms_per_s\": " << coalesced << ",\n"
        << "  \"coalesced_speedup_vs_naive\": " << coalesced / naive
        << ",\n"
        << "  \"replayed_tile_fraction\": " << replay_fraction << ",\n"
        << "  \"cycle_cold_designs_per_s\": " << cold << ",\n"
        << "  \"cycle_cached_designs_per_s\": " << cached << ",\n"
        << "  \"cached_speedup_vs_cold\": " << cached / cold << ",\n"
        << "  \"gemm_cache_hit_rate\": " << cache_stats.hitRate()
        << "\n"
        << "}\n";
    std::cout << "[json] results/BENCH_cycle.json\n";
}

// ---- Serving-simulator trace-scale throughput ------------------------------

/**
 * Engine-independent digest of one replica run: the counters and
 * streaming histograms simulateReplica populates regardless of the
 * record switches, printed with full double precision. The fast row
 * (calendar queue, flat memos, recording off) and the legacy row
 * (binary heap, mutex+map memos, recording on) must produce the same
 * string — that is the fingerprint_match gate in BENCH_sim.json.
 */
std::string
replicaFingerprint(const sim::ReplicaMetrics &m)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << m.arrivals << ' ' << m.completed << ' '
        << m.prefillIterations << ' ' << m.decodeIterations << ' '
        << m.generatedTokens << ' ' << m.lastEventS;
    out << " ttft " << m.ttftHist.count << ' ' << m.ttftHist.sumS
        << ' ' << m.ttftHist.maxS;
    for (std::uint64_t b : m.ttftHist.buckets)
        out << ' ' << b;
    out << " tbt " << m.tbtHist.count << ' ' << m.tbtHist.sumS << ' '
        << m.tbtHist.maxS;
    for (std::uint64_t b : m.tbtHist.buckets)
        out << ' ' << b;
    out << " depth " << m.queueDepth.maxDepth << ' '
        << m.queueDepth.samples;
    for (std::uint64_t b : m.queueDepth.buckets)
        out << ' ' << b;
    return out.str();
}

/**
 * Requests/second through one replica replaying a diurnal trace of
 * roughly @p requests requests, legacy path vs fast path.
 *
 * The legacy row reproduces the seed configuration end to end:
 * binary-heap event queue, mutex-protected map memos, every request
 * record and decode gap kept, and percentiles extracted by the
 * sort-based LatencyRollup — at a million requests that is ~10^8
 * stored gaps, gigabyte-scale vector growth, and an O(n log n) sort
 * per rollup. The fast row is the trace-scale path: calendar queue,
 * lock-free flat memos, recording off (O(1) memory), streaming
 * histogram percentiles. Both rows must agree on the engine-
 * independent fingerprint above; the speedup is the headline number
 * scripts/compare_bench.py gates (>= 10x).
 */
void
runSimThroughput(int reps, long requests)
{
    const core::SanctionsStudy study;
    // Same workload/device as the serving benches: Llama-3 70B at
    // TP=4 on the modeled A100.
    core::Workload workload = core::workloadByName("llama70b");
    workload.setting.batch = 32;
    const sim::IterationCostModel fast_cost =
        study.makeCostModel(hw::modeledA100(), workload);
    const sim::IterationCostModel legacy_cost = study.makeCostModel(
        hw::modeledA100(), workload, sim::MemoEngine::LEGACY_MAP);

    // Offer ~55% of the replica's decode-bound capacity on average:
    // prefill interference eats part of that bound, so the diurnal
    // peaks and bursts transiently oversubscribe the replica (queues
    // build and drain) while the mean keeps the run stable.
    const double capacity =
        32.0 / fast_cost.decodeStepS(32) / 128.0; // 128 = mean output
    sim::DiurnalTraceSpec spec;
    spec.baseRatePerS = 0.55 * capacity;
    spec.peakToTrough = 3.0;
    spec.burstMultiplier = 2.0;
    spec.burstMeanS = 30.0;
    spec.calmMeanS = 300.0;
    spec.promptLen = sim::LengthDistribution::fixed(512);
    spec.outputLen = sim::LengthDistribution::uniform(64, 192, 32);
    spec.horizonS = static_cast<double>(requests) / spec.baseRatePerS;
    spec.periodS = spec.horizonS / 4.0; // four diurnal cycles
    spec.seed = 2026;

    struct SimRow
    {
        double simS = 0.0;     //!< event-loop wall time
        double extractS = 0.0; //!< percentile-extraction wall time
        double ttftP99S = 0.0;
        double tbtP99S = 0.0;
        std::string fingerprint;
        sim::ReplicaMetrics metrics;
    };
    const auto run_once = [&](const sim::IterationCostModel &cost,
                              sim::QueueEngine engine, bool record) {
        SimRow row;
        auto trace = sim::TraceWorkload::diurnal(spec);
        sim::ReplicaConfig rc;
        rc.scheduler.queueEngine = engine;
        rc.recordRequests = record;
        rc.recordTbtGaps = record;
        auto start = std::chrono::steady_clock::now();
        row.metrics = sim::simulateReplica(cost, rc, *trace);
        row.simS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        start = std::chrono::steady_clock::now();
        if (record) {
            // The seed's extraction: sort-based order statistics over
            // every request / gap.
            row.ttftP99S = row.metrics.ttft().p99S;
            row.tbtP99S = row.metrics.tbt().p99S;
        } else {
            row.ttftP99S = row.metrics.ttftHist.percentileS(99.0);
            row.tbtP99S = row.metrics.tbtHist.percentileS(99.0);
        }
        row.extractS = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        row.fingerprint = replicaFingerprint(row.metrics);
        return row;
    };

    std::cout << "\nServing-simulator throughput (diurnal trace, ~"
              << requests << " requests, best of " << reps << ")\n";

    SimRow legacy;
    SimRow fast;
    double legacy_rate = 0.0;
    double fast_rate = 0.0;
    for (int r = 0; r < reps; ++r) {
        SimRow l = run_once(legacy_cost,
                            sim::QueueEngine::LEGACY_HEAP, true);
        SimRow f =
            run_once(fast_cost, sim::QueueEngine::CALENDAR, false);
        fatalIf(l.fingerprint != f.fingerprint,
                "fast-path replica metrics diverged from the legacy "
                "path (fingerprint mismatch)");
        const double lr = static_cast<double>(l.metrics.completed) /
                          (l.simS + l.extractS);
        const double fr = static_cast<double>(f.metrics.completed) /
                          (f.simS + f.extractS);
        if (lr > legacy_rate) {
            legacy_rate = lr;
            legacy = std::move(l);
        }
        if (fr > fast_rate) {
            fast_rate = fr;
            fast = std::move(f);
        }
    }
    const double speedup = fast_rate / legacy_rate;
    const double events =
        static_cast<double>(fast.metrics.arrivals) +
        static_cast<double>(fast.metrics.prefillIterations) +
        static_cast<double>(fast.metrics.decodeIterations);
    const double events_per_s =
        events / (fast.simS + fast.extractS);
    const double tokens_per_s =
        static_cast<double>(fast.metrics.generatedTokens) /
        (fast.simS + fast.extractS);

    std::cout << "  legacy (heap+map, recording, sort rollups): "
              << static_cast<long>(legacy_rate) << " requests/s ("
              << legacy.simS + legacy.extractS << " s)\n"
              << "  fast (calendar+flat, histograms)          : "
              << static_cast<long>(fast_rate) << " requests/s ("
              << fast.simS + fast.extractS << " s, " << speedup
              << "x legacy)\n"
              << "  fast event rate: "
              << static_cast<long>(events_per_s) << " events/s, "
              << static_cast<long>(tokens_per_s) << " tokens/s\n"
              << "  p99 ttft " << fast.ttftP99S << " s (legacy "
              << legacy.ttftP99S << "), p99 tbt " << fast.tbtP99S
              << " s (legacy " << legacy.tbtP99S << ")\n";

    // Fleet sizing on the shared flat memo: the searches' replicas
    // all hit one read-mostly table, so the whole plan costs a
    // handful of cold lattice evaluations.
    sim::FleetDemand demand;
    demand.ratePerS = 4.0;
    demand.promptLen = sim::LengthDistribution::fixed(512);
    demand.outputLen = sim::LengthDistribution::fixed(128);
    demand.horizonS = 180.0;
    demand.seed = 2026;
    sim::SloTargets targets;
    targets.ttftMaxS = 5.0;
    targets.tbtMaxS = 0.200;
    const auto size_start = std::chrono::steady_clock::now();
    const sim::FleetSizingResult sized = sim::sizeFleet(
        fast_cost, demand, sim::SchedulerConfig{}, targets, 512);
    const double size_wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - size_start)
            .count();
    std::cout << "  sizeFleet: " << sized.replicas << " replicas in "
              << size_wall << " s (" << sized.probes << " probes)\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_sim.json");
    out << "{\n"
        << "  \"workload\": \"llama70b-tp4 on modeled A100\",\n"
        << "  \"trace\": \"diurnal\",\n"
        << "  \"trace_requests\": " << fast.metrics.completed
        << ",\n"
        << "  \"trace_tokens\": " << fast.metrics.generatedTokens
        << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"legacy_requests_per_s\": " << legacy_rate << ",\n"
        << "  \"fast_requests_per_s\": " << fast_rate << ",\n"
        << "  \"fast_speedup_vs_legacy\": " << speedup << ",\n"
        << "  \"fast_events_per_s\": " << events_per_s << ",\n"
        << "  \"fast_tokens_per_s\": " << tokens_per_s << ",\n"
        << "  \"legacy_wall_s\": " << legacy.simS + legacy.extractS
        << ",\n"
        << "  \"fast_wall_s\": " << fast.simS + fast.extractS
        << ",\n"
        << "  \"size_fleet_wall_s\": " << size_wall << ",\n"
        << "  \"size_fleet_replicas\": " << sized.replicas << ",\n"
        << "  \"size_fleet_probes\": " << sized.probes << ",\n"
        << "  \"fingerprint_match\": 1\n"
        << "}\n";
    std::cout << "[json] results/BENCH_sim.json\n";
}

// ---- Policy co-evolution throughput ----------------------------------------

/**
 * The speed claim behind the arms race: a designer best response is
 * an AdaptiveSearch over the whole escape portfolio (five sub-spaces,
 * ~190k raw points under the canonical rule), so a multi-round,
 * multi-budget frontier stays interactive only because the adaptive
 * engine evaluates a small fraction of each space and the race memoizes
 * repeated rules. Each rep times a *fresh* ArmsRace (cold memo, cold
 * reference) running the full default race for both mechanisms;
 * best-responses/s counts distinct designer oracles computed.
 */
void
runCoevoThroughput(int reps)
{
    coevo::ArmsRaceConfig cfg;
    cfg.rounds = 8;
    cfg.collateralBudget = 0.10;

    std::cout << "\nPolicy co-evolution throughput (" << cfg.rounds
              << " rounds, budget " << cfg.collateralBudget
              << ", best of " << reps << ")\n";

    double best_rate = 0.0;
    coevo::ArmsRaceResult thr, fw;
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        cfg.mechanism = coevo::Mechanism::THRESHOLD;
        coevo::ArmsRace threshold_race(cfg);
        thr = threshold_race.run();
        cfg.mechanism = coevo::Mechanism::FIRMWARE;
        coevo::ArmsRace firmware_race(cfg);
        fw = firmware_race.run();
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const std::size_t responses = thr.bestResponses + fw.bestResponses;
        best_rate = std::max(best_rate, responses / wall);
    }

    const std::size_t evaluated = thr.totalEvaluated + fw.totalEvaluated;
    const std::size_t points = thr.totalSpacePoints + fw.totalSpacePoints;
    const double fraction =
        points > 0 ? static_cast<double>(evaluated) / points : 0.0;

    std::cout << "  best responses: " << best_rate << " /s ("
              << thr.bestResponses + fw.bestResponses
              << " distinct rules per race pair)\n"
              << "  evaluated     : " << evaluated << " of " << points
              << " space points (fraction " << fraction << ")\n"
              << "  fixed point   : threshold round "
              << thr.roundsToFixedPoint << ", firmware round "
              << fw.roundsToFixedPoint << "\n"
              << "  final escaped : threshold "
              << thr.rounds.back().designer.escapedPerf << ", firmware "
              << fw.rounds.back().designer.escapedPerf << "\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_coevo.json");
    out << "{\n"
        << "  \"workload\": \"" << cfg.workload << "\",\n"
        << "  \"rounds\": " << cfg.rounds << ",\n"
        << "  \"collateral_budget\": " << cfg.collateralBudget << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"designer_best_responses_per_s\": " << best_rate << ",\n"
        << "  \"best_responses_per_race_pair\": "
        << thr.bestResponses + fw.bestResponses << ",\n"
        << "  \"evaluated_points\": " << evaluated << ",\n"
        << "  \"space_points\": " << points << ",\n"
        << "  \"fraction_evaluated\": " << fraction << ",\n"
        << "  \"threshold_rounds_to_fixed_point\": "
        << thr.roundsToFixedPoint << ",\n"
        << "  \"firmware_rounds_to_fixed_point\": "
        << fw.roundsToFixedPoint << ",\n"
        << "  \"threshold_final_escaped_perf\": "
        << thr.rounds.back().designer.escapedPerf << ",\n"
        << "  \"firmware_final_escaped_perf\": "
        << fw.rounds.back().designer.escapedPerf << "\n"
        << "}\n";
    std::cout << "[json] results/BENCH_coevo.json\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool dse = false;
    bool gemm = false;
    bool cycle = false;
    bool sim = false;
    bool coevo_bench = false;
    bool skip_micro = false;
    int reps = 3;
    long sim_requests = 1'000'000;
    std::vector<char *> bench_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dse") == 0) {
            dse = true;
        } else if (std::strcmp(argv[i], "--dse-only") == 0) {
            dse = skip_micro = true;
        } else if (std::strcmp(argv[i], "--gemm") == 0) {
            gemm = true;
        } else if (std::strcmp(argv[i], "--gemm-only") == 0) {
            gemm = skip_micro = true;
        } else if (std::strcmp(argv[i], "--cycle") == 0) {
            cycle = true;
        } else if (std::strcmp(argv[i], "--cycle-only") == 0) {
            cycle = skip_micro = true;
        } else if (std::strcmp(argv[i], "--sim") == 0) {
            sim = true;
        } else if (std::strcmp(argv[i], "--sim-only") == 0) {
            sim = skip_micro = true;
        } else if (std::strcmp(argv[i], "--coevo") == 0) {
            coevo_bench = true;
        } else if (std::strcmp(argv[i], "--coevo-only") == 0) {
            coevo_bench = skip_micro = true;
        } else if (std::strncmp(argv[i], "--sim-requests=", 15) == 0) {
            sim_requests = std::max(1000L, std::atol(argv[i] + 15));
        } else if (std::strncmp(argv[i], "--dse-reps=", 11) == 0) {
            reps = std::max(1, std::atoi(argv[i] + 11));
        } else {
            bench_argv.push_back(argv[i]);
        }
    }
    if (!skip_micro) {
        int bench_argc = static_cast<int>(bench_argv.size());
        benchmark::Initialize(&bench_argc, bench_argv.data());
        if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                                   bench_argv.data()))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    if (dse)
        runDseThroughput(reps);
    if (gemm)
        runGemmThroughput(reps);
    if (cycle)
        runCycleThroughput(reps);
    if (sim)
        runSimThroughput(reps, sim_requests);
    if (coevo_bench)
        runCoevoThroughput(reps);
    return 0;
}
