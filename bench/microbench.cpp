/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: one
 * design evaluation, a full Table-3 sweep, and rule classification —
 * plus a sweep-throughput section (--dse / --dse-only) comparing the
 * legacy per-batch-thread pipeline against the shared-pool and
 * streaming paths and the adaptive coarse-to-fine engine, emitting
 * results/BENCH_dse.json, and a GEMM-mode
 * section (--gemm / --gemm-only) comparing TILE_SIM sweep evaluation
 * under the aggregated fast path vs the legacy per-tile wave walk,
 * emitting results/BENCH_gemm.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "core/acs.hh"
#include "perf/gemm_cache.hh"

using namespace acs;

namespace {

void
BM_EvaluateDesign(benchmark::State &state)
{
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const dse::DesignEvaluator evaluator(workload.model,
                                         workload.setting,
                                         workload.system);
    const hw::HardwareConfig cfg = hw::modeledA100();
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluator.evaluate(cfg));
    }
}
BENCHMARK(BM_EvaluateDesign);

void
BM_Table3Sweep(benchmark::State &state)
{
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    for (auto _ : state) {
        benchmark::DoNotOptimize(study.runSweep(space, workload));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(space.size()));
}
BENCHMARK(BM_Table3Sweep);

void
BM_ClassifyDatabase(benchmark::State &state)
{
    const devices::Database db;
    const auto specs = db.allSpecs();
    for (auto _ : state) {
        for (const auto &spec : specs) {
            benchmark::DoNotOptimize(
                policy::Oct2023Rule::classify(spec));
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_ClassifyDatabase);

void
BM_PrefillGraphBuild(benchmark::State &state)
{
    const auto cfg = model::gpt3_175b();
    const model::InferenceSetting setting;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model::buildPrefillGraph(cfg, setting, 4));
    }
}
BENCHMARK(BM_PrefillGraphBuild);

// ---- DSE sweep throughput (designs/second) ---------------------------------

/**
 * The seed implementation formatted every validation message eagerly
 * (fourteen string concatenations per validate() call, several calls
 * per design); reproduce that cost so the legacy baseline reflects
 * what the pre-optimization pipeline actually spent.
 */
void
legacyEagerValidate(const hw::HardwareConfig &cfg)
{
    volatile std::size_t sink = 0;
    for (const char *suffix :
         {": coreCount must be >= 1", ": lanesPerCore must be >= 1",
          ": systolic array dims must be >= 1",
          ": vectorWidth must be >= 1", ": clockHz must be > 0",
          ": opBitwidth must be >= 1", ": L1 size must be > 0",
          ": L2 size must be > 0", ": HBM capacity must be > 0",
          ": HBM bandwidth must be > 0", ": PHY count must be >= 0",
          ": PHY bandwidth must be >= 0",
          ": diesPerPackage must be >= 1"}) {
        sink += (cfg.name + suffix).size();
    }
}

/**
 * Faithful reconstruction of the pre-optimization evaluate(): layer
 * graphs rebuilt for every design, op-shape memoization off, the
 * performance density recomputed from a second full area breakdown,
 * eager validation-message formatting at every model construction,
 * and VectorModel's former throwaway inner MatmulModel (it built one
 * just to read the global-buffer bandwidth).
 */
dse::EvaluatedDesign
legacyEvaluate(const hw::HardwareConfig &cfg, const core::Workload &w,
               const area::AreaModel &area_model,
               const area::CostModel &cost_model,
               const perf::PerfParams &params)
{
    // Simulator ctor + 3 model ctors + inner MatmulModel + area
    // breakdown each validated eagerly in the seed.
    for (int i = 0; i < 6; ++i)
        legacyEagerValidate(cfg);
    const perf::MatmulModel throwaway(cfg, params);
    benchmark::DoNotOptimize(throwaway.globalBufferBandwidth());

    dse::EvaluatedDesign d;
    d.config = cfg;
    d.tpp = cfg.tpp();
    d.dieAreaMm2 = area_model.dieArea(cfg);
    d.perfDensity = area_model.perfDensity(cfg);
    d.underReticle = d.dieAreaMm2 <= area::RETICLE_LIMIT_MM2;
    if (cost_model.diesPerWafer(d.dieAreaMm2) > 0) {
        d.dieCostUsd = cost_model.dieCostUsd(d.dieAreaMm2, cfg.process);
        d.goodDieCostUsd =
            cost_model.goodDieCostUsd(d.dieAreaMm2, cfg.process);
    }
    const perf::InferenceSimulator sim(cfg, params);
    const perf::InferenceResult result =
        sim.run(w.model, w.setting, w.system);
    d.ttftS = result.ttftS;
    d.tbtS = result.tbtS;
    return d;
}

/** Legacy parallel batch: a fresh std::thread crew per call. */
std::vector<dse::EvaluatedDesign>
legacyEvaluateAllParallel(const std::vector<hw::HardwareConfig> &cfgs,
                          const core::Workload &w, unsigned threads)
{
    perf::PerfParams params;
    params.memoizeOps = false;
    const area::AreaModel area_model;
    const area::CostModel cost_model;
    std::vector<dse::EvaluatedDesign> out(cfgs.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < cfgs.size();
             i = next.fetch_add(1)) {
            out[i] = legacyEvaluate(cfgs[i], w, area_model, cost_model,
                                    params);
        }
    };
    std::vector<std::thread> crew;
    crew.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        crew.emplace_back(worker);
    for (std::thread &t : crew)
        t.join();
    return out;
}

/** Best designs/second over @p reps repetitions of @p run. */
template <typename Fn>
double
bestThroughput(std::size_t designs, int reps, Fn &&run)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        best = std::max(best, designs / s);
    }
    return best;
}

void
runDseThroughput(int reps)
{
    // The Fig. 6 space and workload: GPT-3 175B, TPP 4800, 600 GB/s.
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    const auto cfgs = space.generate();
    const dse::DesignEvaluator evaluator(workload.model,
                                         workload.setting,
                                         workload.system);
    constexpr unsigned THREADS = 8;

    std::cout << "\nDSE sweep throughput (fig06 space, "
              << cfgs.size() << " designs, " << THREADS
              << " threads, best of " << reps << ")\n";

    // Each row times the full pipeline from the SweepSpace, which is
    // what core::SanctionsStudy::runSweep pays: the materializing rows
    // include generate(), the streaming row fuses point-building into
    // its workers.
    const double legacy = bestThroughput(cfgs.size(), reps, [&] {
        legacyEvaluateAllParallel(space.generate(), workload, THREADS);
    });
    const double serial = bestThroughput(cfgs.size(), reps, [&] {
        evaluator.evaluateAll(space.generate());
    });
    const double pooled = bestThroughput(cfgs.size(), reps, [&] {
        evaluator.evaluateAllParallel(space.generate(), THREADS);
    });
    const double streaming = bestThroughput(cfgs.size(), reps, [&] {
        evaluator.evaluateStream(space, nullptr, nullptr, THREADS);
    });

    // Adaptive coarse-to-fine search (docs/DSE.md) over the fine
    // space: the rate is EFFECTIVE designs/second — space covered per
    // wall-clock second — because the engine prunes instead of
    // evaluating every point. fractionEvaluated reports how much it
    // actually computed.
    const dse::SweepSpace fine = dse::fineSpace();
    dse::AdaptiveConfig acfg;
    acfg.threads = THREADS;
    dse::AdaptiveResult adaptive_res;
    const double adaptive =
        bestThroughput(dse::SweepPlan(fine).pointCount(), reps, [&] {
            dse::AdaptiveSearch search(evaluator, fine, acfg);
            adaptive_res = search.run();
        });

    const auto row = [](const char *name, double v, double base) {
        std::cout << "  " << name << ": " << static_cast<long>(v)
                  << " designs/s (" << v / base << "x legacy)\n";
    };
    row("legacy   ", legacy, legacy);
    row("serial   ", serial, legacy);
    row("pooled   ", pooled, legacy);
    row("streaming", streaming, legacy);
    std::cout << "  adaptive : " << static_cast<long>(adaptive)
              << " effective designs/s ("
              << adaptive / streaming << "x streaming; fine space, "
              << adaptive_res.evaluated << " of "
              << adaptive_res.spacePoints << " evaluated)\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_dse.json");
    out << "{\n"
        << "  \"space\": \"table3/fig06\",\n"
        << "  \"designs\": " << cfgs.size() << ",\n"
        << "  \"threads\": " << THREADS << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"legacy_designs_per_s\": " << legacy << ",\n"
        << "  \"serial_designs_per_s\": " << serial << ",\n"
        << "  \"pooled_designs_per_s\": " << pooled << ",\n"
        << "  \"streaming_designs_per_s\": " << streaming << ",\n"
        << "  \"pooled_speedup_vs_legacy\": " << pooled / legacy
        << ",\n"
        << "  \"streaming_speedup_vs_legacy\": " << streaming / legacy
        << ",\n"
        << "  \"adaptive_space\": \"fine\",\n"
        << "  \"adaptive_space_designs\": "
        << adaptive_res.spacePoints << ",\n"
        << "  \"adaptive_evaluated\": " << adaptive_res.evaluated
        << ",\n"
        << "  \"fraction_evaluated\": "
        << adaptive_res.fractionEvaluated << ",\n"
        << "  \"frontier_size\": " << adaptive_res.frontier.size()
        << ",\n"
        << "  \"adaptive_designs_per_s\": " << adaptive << ",\n"
        << "  \"adaptive_speedup_vs_streaming\": "
        << adaptive / streaming << "\n"
        << "}\n";
    std::cout << "[json] results/BENCH_dse.json\n";
}

// ---- TILE_SIM GEMM-mode throughput -----------------------------------------

/**
 * Designs/second for full TILE_SIM-mode sweep evaluation on the
 * Fig. 6 space: the aggregated wave-class fast path vs the retained
 * legacy per-tile walk (plus the analytic mode for scale). All
 * TILE_SIM rows produce bit-identical results — the suites in
 * tests/test_gemm_property.cpp and tests/test_dse.cpp prove it — so
 * this measures pure implementation cost.
 *
 * The cached row measures the steady state of a session-scoped
 * perf::GemmCache installed through PerfParams::gemmCache: the cache
 * persists across repetitions, so after the warm-up rep every GEMM is
 * a hit and the sweep pays only key derivation plus the non-GEMM
 * models. That is the cost profile of the sweep drivers' own hoisted
 * per-sweep cache on any space with a populated comm-only axis (the
 * fig06 space has a single deviceBandwidth, so its within-sweep reuse
 * comes only from design pairs that share a compute projection).
 */
void
runGemmThroughput(int reps)
{
    const core::Workload workload = core::gpt3Workload();
    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    const auto cfgs = space.generate();
    constexpr unsigned THREADS = 8;

    perf::PerfParams analytic_params;
    perf::PerfParams fast_params;
    fast_params.gemmMode = perf::GemmMode::TILE_SIM;
    // The uncached rows measure pure engine cost: without this the
    // evaluator's default hoisted per-sweep cache (cacheTileSimGemms)
    // would fold cross-design reuse into them and the cached row's
    // speedup would be measured against a partially cached baseline.
    fast_params.cacheTileSimGemms = false;
    perf::PerfParams legacy_params = fast_params;
    legacy_params.tileSimEngine = perf::TileSimEngine::LEGACY_WALK;
    perf::GemmCache session_cache;
    perf::PerfParams cached_params = fast_params;
    cached_params.gemmCache = &session_cache;

    const dse::DesignEvaluator analytic(workload.model, workload.setting,
                                        workload.system, analytic_params);
    const dse::DesignEvaluator fast(workload.model, workload.setting,
                                    workload.system, fast_params);
    const dse::DesignEvaluator legacy(workload.model, workload.setting,
                                      workload.system, legacy_params);
    const dse::DesignEvaluator cached(workload.model, workload.setting,
                                      workload.system, cached_params);

    std::cout << "\nGEMM-mode sweep throughput (fig06 space, "
              << cfgs.size() << " designs, " << THREADS
              << " threads, best of " << reps << ")\n";

    const double legacy_walk = bestThroughput(cfgs.size(), reps, [&] {
        legacy.evaluateAllParallel(cfgs, THREADS);
    });
    const double aggregated = bestThroughput(cfgs.size(), reps, [&] {
        fast.evaluateAllParallel(cfgs, THREADS);
    });
    // Warm the session cache outside the timed reps so even a
    // single-rep run (--dse-reps=1) reports the steady state.
    cached.evaluateAllParallel(cfgs, THREADS);
    const double cached_mode = bestThroughput(cfgs.size(), reps, [&] {
        cached.evaluateAllParallel(cfgs, THREADS);
    });
    const perf::GemmCache::Stats cache_stats = session_cache.stats();
    const double analytic_mode = bestThroughput(cfgs.size(), reps, [&] {
        analytic.evaluateAllParallel(cfgs, THREADS);
    });

    const auto row = [&](const char *name, double v) {
        std::cout << "  " << name << ": " << static_cast<long>(v)
                  << " designs/s (" << v / legacy_walk
                  << "x legacy walk)\n";
    };
    row("tile_sim legacy walk", legacy_walk);
    row("tile_sim aggregated ", aggregated);
    row("tile_sim cached     ", cached_mode);
    row("analytic            ", analytic_mode);
    std::cout << "  gemm cache: " << cache_stats.entries << " entries, "
              << cache_stats.hits << " hits / " << cache_stats.misses
              << " misses (hit rate " << cache_stats.hitRate() << ")\n";

    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::ofstream out("results/BENCH_gemm.json");
    out << "{\n"
        << "  \"space\": \"table3/fig06\",\n"
        << "  \"designs\": " << cfgs.size() << ",\n"
        << "  \"threads\": " << THREADS << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"tile_sim_legacy_walk_designs_per_s\": " << legacy_walk
        << ",\n"
        << "  \"tile_sim_aggregated_designs_per_s\": " << aggregated
        << ",\n"
        << "  \"tile_sim_cached_designs_per_s\": " << cached_mode
        << ",\n"
        << "  \"analytic_designs_per_s\": " << analytic_mode << ",\n"
        << "  \"aggregated_speedup_vs_legacy_walk\": "
        << aggregated / legacy_walk << ",\n"
        << "  \"cached_speedup_vs_aggregated\": "
        << cached_mode / aggregated << ",\n"
        << "  \"gemm_cache_hit_rate\": " << cache_stats.hitRate()
        << "\n"
        << "}\n";
    std::cout << "[json] results/BENCH_gemm.json\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool dse = false;
    bool gemm = false;
    bool skip_micro = false;
    int reps = 3;
    std::vector<char *> bench_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dse") == 0) {
            dse = true;
        } else if (std::strcmp(argv[i], "--dse-only") == 0) {
            dse = skip_micro = true;
        } else if (std::strcmp(argv[i], "--gemm") == 0) {
            gemm = true;
        } else if (std::strcmp(argv[i], "--gemm-only") == 0) {
            gemm = skip_micro = true;
        } else if (std::strncmp(argv[i], "--dse-reps=", 11) == 0) {
            reps = std::max(1, std::atoi(argv[i] + 11));
        } else {
            bench_argv.push_back(argv[i]);
        }
    }
    if (!skip_micro) {
        int bench_argc = static_cast<int>(bench_argv.size());
        benchmark::Initialize(&bench_argc, bench_argv.data());
        if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                                   bench_argv.data()))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    if (dse)
        runDseThroughput(reps);
    if (gemm)
        runGemmThroughput(reps);
    return 0;
}
