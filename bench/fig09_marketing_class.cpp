/**
 * @file
 * Figure 9: marketing-based classification inconsistencies under the
 * October 2023 rule — "false data center" and "false non-data center"
 * devices (Sec. 5.2).
 *
 * Paper (65 devices): 4 false data center, 7 false non-data center.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Figure 9",
                  "Marketing-based device classification consistency "
                  "(Oct 2023)");

    const devices::Database db;
    const auto specs = db.allSpecs();

    ScatterPlot plot("Marketing-consistency scatter",
                     "Performance Density (TPP/mm^2)",
                     "Total Processing Performance (TPP)");
    plot.setLimits({std::nullopt, 12.0, std::nullopt, 7000.0});
    ScatterSeries cdc{"Consistent DC", 'D', {}, {}};
    ScatterSeries fdc{"False DC", 'F', {}, {}};
    ScatterSeries cndc{"Consistent non-DC", '.', {}, {}};
    ScatterSeries fndc{"False non-DC", 'N', {}, {}};

    Table t({"device", "market", "TPP", "PD", "consistency"});
    for (const auto &spec : specs) {
        const auto consistency = policy::analyzeMarketing(spec);
        ScatterSeries *series = nullptr;
        switch (consistency) {
          case policy::MarketingConsistency::CONSISTENT_DC:
            series = &cdc; break;
          case policy::MarketingConsistency::FALSE_DC:
            series = &fdc; break;
          case policy::MarketingConsistency::CONSISTENT_NON_DC:
            series = &cndc; break;
          case policy::MarketingConsistency::FALSE_NON_DC:
            series = &fndc; break;
        }
        series->xs.push_back(spec.perfDensity());
        series->ys.push_back(spec.tpp);
        if (consistency == policy::MarketingConsistency::FALSE_DC ||
            consistency == policy::MarketingConsistency::FALSE_NON_DC) {
            t.addRow({spec.name, toString(spec.market), fmt(spec.tpp, 0),
                      fmt(spec.perfDensity()), toString(consistency)});
        }
    }
    plot.addSeries(cndc);
    plot.addSeries(cdc);
    plot.addSeries(fdc);
    plot.addSeries(fndc);
    plot.print(std::cout);

    std::cout << "\nInconsistent devices:\n";
    t.print(std::cout);
    bench::writeCsv("fig09_inconsistent", t);

    const auto summary = policy::summarizeMarketing(specs);
    std::cout << "\nSummary over " << specs.size() << " devices: "
              << summary.falseDc << " false data center, "
              << summary.falseNonDc << " false non-data center ("
              << summary.consistentDc << " consistent DC, "
              << summary.consistentNonDc << " consistent non-DC)\n"
              << "paper: 4 false DC, 7 false non-DC over 65 devices "
                 "(exact counts depend on SKU curation and which "
                 "datasheet tensor figure is used; see "
                 "EXPERIMENTS.md)\n";
    return 0;
}
