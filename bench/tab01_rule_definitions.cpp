/**
 * @file
 * Table 1: the Advanced Computing Rule definitions, rendered from the
 * implemented thresholds (so the printed table is provably what the
 * classifier enforces), with boundary probes on each threshold.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

policy::DeviceSpec
probe(double tpp, double bw, double area,
      policy::MarketSegment market = policy::MarketSegment::DATA_CENTER)
{
    policy::DeviceSpec s;
    s.name = "probe";
    s.tpp = tpp;
    s.deviceBandwidthGBps = bw;
    s.dieAreaMm2 = area;
    s.market = market;
    return s;
}

} // anonymous namespace

int
main()
{
    bench::header("Table 1", "Advanced Computing Rule definitions");

    std::cout << "\n(a) October 2022 [all devices]\n";
    Table a({"classification", "condition"});
    a.addRow({"regular license",
              "TPP >= " + fmt(policy::Oct2022Rule::TPP_THRESHOLD, 0) +
              " AND bidirectional device BW >= " +
              fmt(policy::Oct2022Rule::BANDWIDTH_THRESHOLD_GBPS, 0) +
              " GB/s"});
    a.print(std::cout);

    std::cout << "\n(b) October 2023\n";
    Table b({"classification", "data center", "non-data center"});
    using R = policy::Oct2023Rule;
    b.addRow({"regular license",
              "TPP >= " + fmt(R::TPP_LICENSE, 0) + " OR (TPP >= " +
              fmt(R::TPP_LOW, 0) + " AND PD >= " + fmt(R::PD_LICENSE) +
              ")", "-"});
    b.addRow({"NAC",
              fmt(R::TPP_LICENSE, 0) + " > TPP >= " + fmt(R::TPP_MID, 0) +
              " AND " + fmt(R::PD_LICENSE) + " > PD >= " +
              fmt(R::PD_LOW) + "; or TPP >= " + fmt(R::TPP_LOW, 0) +
              " AND " + fmt(R::PD_LICENSE) + " > PD >= " +
              fmt(R::PD_MID),
              "TPP >= " + fmt(R::TPP_LICENSE, 0)});
    b.print(std::cout);

    // Boundary probes: one device on each side of every threshold.
    std::cout << "\nBoundary probes (data-center track):\n";
    Table p({"TPP", "dev BW", "PD", "Oct 2022", "Oct 2023"});
    struct Case
    {
        double tpp, bw, area;
    };
    const Case cases[] = {
        {4800.0, 600.0, 1e6},  // both 2022 thresholds exactly
        {4800.0, 599.0, 1e6},  // BW just under
        {4799.0, 900.0, 1e6},  // TPP just under
        {2400.0, 0.0, 1500.0}, // PD 1.6 exactly (NAC tier 1)
        {2400.0, 0.0, 1501.0}, // PD just under 1.6
        {1600.0, 0.0, 500.0},  // PD 3.2 exactly (NAC tier 2)
        {1600.0, 0.0, 270.0},  // PD 5.92+ (license by density)
        {1599.0, 0.0, 100.0},  // under the TPP floor entirely
    };
    for (const Case &c : cases) {
        const auto spec = probe(c.tpp, c.bw, c.area);
        p.addRow({fmt(c.tpp, 0), fmt(c.bw, 0), fmt(spec.perfDensity()),
                  toString(policy::Oct2022Rule::classify(spec)),
                  toString(policy::Oct2023Rule::classify(spec))});
    }
    p.print(std::cout);
    bench::writeCsv("tab01_boundaries", p);
    return 0;
}
