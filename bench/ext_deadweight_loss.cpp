/**
 * @file
 * Extension bench: quantifying the economic externality language of
 * Secs. 2.4 / 5.1 with the linear market model.
 *
 * Each rule variant removes a set of devices from the export market;
 * the bench computes the deadweight loss of restricting each affected
 * market segment, showing how the Oct-2023 rule's false-DC/false-NDC
 * devices add avoidable welfare loss that the architecture-first
 * classifier (Fig. 10) removes.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

/** Stylized market anchors per segment (price $, annual units). */
struct SegmentMarket
{
    const char *name;
    policy::MarketSegment segment;
    double unitPrice;
    double annualVolume;
};

constexpr SegmentMarket SEGMENTS[] = {
    {"data-center", policy::MarketSegment::DATA_CENTER, 18000.0, 3.0e6},
    {"consumer", policy::MarketSegment::CONSUMER, 900.0, 40.0e6},
    {"workstation", policy::MarketSegment::WORKSTATION, 3500.0, 4.0e6},
};

} // anonymous namespace

int
main()
{
    bench::header("Extension",
                  "Deadweight loss of each rule variant (linear "
                  "supply/demand model)");

    const devices::Database db;
    const auto specs = db.allSpecs();

    // Fraction of each segment's catalogue regulated under each rule.
    auto regulated_fraction = [&](policy::MarketSegment segment,
                                  auto &&classify) {
        int total = 0, regulated = 0;
        for (const auto &spec : specs) {
            if (spec.market != segment)
                continue;
            ++total;
            if (policy::isRegulated(classify(spec)))
                ++regulated;
        }
        return total == 0
                   ? 0.0
                   : static_cast<double>(regulated) / total;
    };

    struct RuleVariant
    {
        const char *name;
        std::function<policy::Classification(
            const policy::DeviceSpec &)> classify;
    };
    const std::vector<RuleVariant> rules = {
        {"Oct 2022", [](const policy::DeviceSpec &s) {
             return policy::Oct2022Rule::classify(s);
         }},
        {"Oct 2023 (marketing)", [](const policy::DeviceSpec &s) {
             return policy::Oct2023Rule::classify(s);
         }},
        {"Architecture-first", [](const policy::DeviceSpec &s) {
             // Regulate only architecturally-data-center devices that
             // the DC track would regulate — gaming devices stay free.
             if (!policy::ArchDataCenterClassifier::isDataCenter(s))
                 return policy::Classification::NOT_APPLICABLE;
             return policy::Oct2023Rule::classifyAs(
                 s, policy::MarketSegment::DATA_CENTER);
         }},
    };

    Table t({"rule", "segment", "regulated share",
             "supply cut (export share 25%)", "DWL ($M/yr)",
             "DWL share of surplus"});
    for (const auto &rule : rules) {
        double total_dwl = 0.0;
        for (const auto &seg : SEGMENTS) {
            const double share =
                regulated_fraction(seg.segment, rule.classify);
            // Sanctioned destinations are ~25% of volume; a regulated
            // SKU loses that share of its sales.
            const double export_share = 0.25;
            const econ::LinearMarket market = econ::marketFromAnchors(
                seg.unitPrice, seg.annualVolume, -1.5, 1.0);
            const double cap =
                seg.annualVolume * (1.0 - share * export_share);
            const econ::Welfare w =
                econ::restrictedWelfare(market, cap);
            total_dwl += w.deadweightLoss;
            t.addRow({rule.name, seg.name, fmtPercent(share, 0),
                      fmtPercent(share * export_share, 1),
                      fmt(w.deadweightLoss / 1e6, 1),
                      fmtPercent(econ::deadweightFraction(market, cap),
                                 2)});
        }
        t.addRow({rule.name, "TOTAL", "", "",
                  fmt(total_dwl / 1e6, 1), ""});
    }
    t.print(std::cout);

    std::cout << "\nShape: the Oct-2023 marketing rule spills welfare "
                 "loss into the consumer/workstation segments (false "
                 "non-DC devices); the architecture-first rule confines "
                 "the loss to the data-center segment it targets.\n";
    return 0;
}
