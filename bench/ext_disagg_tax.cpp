/**
 * @file
 * Extension bench: the sanctions tax under disaggregated purchasing.
 *
 * The monolithic fleet benches (ext_serving_tax, ext_serving_sim)
 * price the tax when one design is bought for everything. This bench
 * prices the escape hatch the rules leave open: prefill capacity is
 * TPP-capped but decode capacity is bandwidth-bound, so a provider
 * can split the purchase — a prefill pool of the compute part and a
 * decode pool of an H20-style bandwidth part — and ship each
 * request's KV cache between them (sim::simulateCluster with
 * PREFILL/DECODE pools, KV transfer charged over the modeled
 * interconnect).
 *
 * For three fleets — the unsanctioned A100, the export-grade H20, and
 * the compliant-optimum prefill design paired with H20 decode — size
 * the monolithic baseline (prefill design bought for everything,
 * sim::sizeFleet) and the disaggregated alternative
 * (sim::sizeDisaggFleet) against identical demand and p99
 * objectives, then price both in $/M good tokens with amortized
 * capex + power (econ::AmortizedCost).
 *
 * A built-in sanity row replays a batch-1 schedule through a
 * disaggregated A100 cluster with a zero-cost KV transfer
 * (sim::KvTransferConfig::free()) and checks its TTFT/TBT are
 * bit-exact against the monolithic replica — the structural identity
 * tests/test_cluster.cpp asserts, kept visible in the CSV.
 *
 * Deterministic: re-running writes byte-identical CSV. The three
 * fleet sizings are independent, so they fan out over
 * common::ThreadPool into index-addressed row slots emitted in fleet
 * order — byte-identical for every ACS_THREADS value. `--legacy-sim`
 * reruns everything on the reference heap-queue/map-memo simulation
 * path (same bytes; CI diffs the two).
 */

#include "bench_util.hh"

#include "common/thread_pool.hh"

using namespace acs;

namespace {

/**
 * Amortized hourly cost of one tensor-parallel replica of @p design:
 * yield-adjusted die cost marked up to a board/system price, plus
 * wall power under the serving activity profile. The markup is the
 * same for every candidate, so the *ratios* — the tax — do not
 * depend on it.
 */
double
replicaHourlyUsd(const dse::EvaluatedDesign &design, int tp)
{
    static const area::PowerModel power_model;
    static const area::ActivityProfile serving{0.35, 0.6, 4.0};
    constexpr double kBoardMarkup = 8.0; // package+HBM+board over die

    econ::AmortizedCost device;
    device.capexUsd = kBoardMarkup * design.goodDieCostUsd;
    device.powerW = power_model.power(design.config, serving).totalW();
    return tp * device.hourlyUsd();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::header("Extension: disaggregation tax",
                  "Monolithic vs prefill/decode-disaggregated fleets "
                  "on sanctioned vs compliant hardware");
    bench::initObs(argc, argv);

    const core::SanctionsStudy study(
        bench::perfParamsFromArgs(argc, argv));
    // Llama-3 70B at TP=4: the largest standard workload whose
    // weights fit every candidate's HBM with KV headroom (same choice
    // as ext_serving_sim).
    core::Workload workload = core::workloadByName("llama70b");
    workload.setting.batch = 32; // reference batch for the cost model
    const int tp = workload.system.tensorParallel;

    // Candidate designs, each evaluated for die cost and power.
    const dse::EvaluatedDesign a100 =
        study.evaluateDesign(hw::modeledA100(), workload).design;
    const dse::EvaluatedDesign h20 =
        study.evaluateDesign(hw::modeledH20Style(), workload).design;
    const auto compliant_set = dse::filterOct2023Unregulated(
        dse::filterReticle(study.runSweep(
            dse::table3Space(2400.0, {500.0 * units::GBPS,
                                      700.0 * units::GBPS,
                                      900.0 * units::GBPS}),
            workload)));
    fatalIf(compliant_set.empty(),
            "no Oct-2023-compliant 2400 TPP design found");
    const dse::EvaluatedDesign compliant = dse::minTbt(compliant_set);

    const bool legacy = bench::legacySim(argc, argv);
    const sim::MemoEngine memo = legacy
                                     ? sim::MemoEngine::LEGACY_MAP
                                     : sim::MemoEngine::FLAT;
    const sim::IterationCostModel a100_cost =
        study.makeCostModel(a100.config, workload, memo);
    const sim::IterationCostModel h20_cost =
        study.makeCostModel(h20.config, workload, memo);
    const sim::IterationCostModel compliant_cost =
        study.makeCostModel(compliant.config, workload, memo);

    sim::FleetDemand demand;
    demand.ratePerS = 4.0;
    demand.promptLen = sim::LengthDistribution::fixed(512);
    demand.outputLen = sim::LengthDistribution::fixed(128);
    demand.horizonS = 180.0;
    demand.seed = 2026;

    serve::PercentileSlo slo;
    slo.ttftP99MaxS = 5.0;
    slo.tbtP99MaxS = 0.200;

    struct Fleet
    {
        std::string label;
        const sim::IterationCostModel *prefill;
        const sim::IterationCostModel *decode;
        double prefillHourly;
        double decodeHourly;
    };
    const std::vector<Fleet> fleets = {
        {"modeled A100 (sanctioned)", &a100_cost, &a100_cost,
         replicaHourlyUsd(a100, tp), replicaHourlyUsd(a100, tp)},
        {"modeled H20-style (export grade)", &h20_cost, &h20_cost,
         replicaHourlyUsd(h20, tp), replicaHourlyUsd(h20, tp)},
        {"compliant 2400 TPP + H20 decode", &compliant_cost,
         &h20_cost, replicaHourlyUsd(compliant, tp),
         replicaHourlyUsd(h20, tp)},
    };

    Table t({"fleet", "mono_replicas", "mono_devices",
             "mono_usd_per_mtok", "disagg_prefill", "disagg_decode",
             "disagg_devices", "device_ratio", "disagg_usd_per_mtok",
             "disagg_ttft_p99_s", "disagg_tbt_p99_ms", "note"});

    // Each fleet sizing is an independent pair of searches; run them
    // concurrently into index-addressed row slots and emit the rows
    // in fleet order, so the table (and CSV) bytes never depend on
    // scheduling.
    std::vector<std::vector<std::string>> rows(fleets.size());
    common::ThreadPool::shared().parallelFor(
        fleets.size(),
        [&](std::size_t i) {
            const Fleet &f = fleets[i];
            sim::DisaggPoolSpec prefill;
            prefill.cost = f.prefill;
            prefill.hourlyCostUsdPerReplica = f.prefillHourly;
            sim::DisaggPoolSpec decode;
            decode.cost = f.decode;
            decode.hourlyCostUsdPerReplica = f.decodeHourly;
            if (legacy) {
                prefill.scheduler.queueEngine =
                    sim::QueueEngine::LEGACY_HEAP;
                decode.scheduler.queueEngine =
                    sim::QueueEngine::LEGACY_HEAP;
            }

            const serve::DisaggPercentilePlan plan =
                serve::planDisaggFleetPercentile(
                    prefill, decode, sim::KvTransferConfig{}, demand,
                    slo, 512);

            const double mono_usd = econ::usdPerMillionTokens(
                plan.monolithic.replicas * f.prefillHourly,
                plan.monolithic.aggregate.goodputTokensPerS(
                    slo.targets()));
            const auto &agg = plan.disagg.aggregate;
            rows[i] =
                {f.label,
                 plan.monolithic.feasible
                     ? std::to_string(plan.monolithic.replicas)
                     : "infeasible",
                 std::to_string(plan.monolithic.devices),
                 plan.monolithic.feasible ? fmt(mono_usd, 2) : "-",
                 plan.disagg.feasible
                     ? std::to_string(plan.disagg.prefillReplicas)
                     : "infeasible",
                 std::to_string(plan.disagg.decodeReplicas),
                 std::to_string(plan.disagg.devices),
                 plan.deviceRatio() > 0.0 ? fmt(plan.deviceRatio(), 2)
                                          : "-",
                 plan.disagg.feasible
                     ? fmt(agg.usdPerMillionGoodTokens(), 2)
                     : "-",
                 fmt(agg.ttftPercentileS(slo.percentile), 4),
                 fmt(units::toMs(agg.tbtPercentileS(slo.percentile)),
                     2),
                 ""};
        },
        1);
    for (const auto &row : rows)
        t.addRow(row);

    // -- built-in sanity row -------------------------------------------
    // A batch-1 schedule (requests spaced far beyond their service
    // time) through an A100 prefill + A100 decode cluster with the
    // zero-cost transfer must reproduce the monolithic replica's
    // latencies bit for bit: the migration machinery adds exactly
    // 0.0 seconds, and the per-member arithmetic is the replica's.
    const std::vector<sim::TraceRequest> schedule = {
        {0.0, 512, 32}, {1000.0, 512, 32}, {2000.0, 512, 32}};
    sim::SchedulerConfig sched;
    if (legacy)
        sched.queueEngine = sim::QueueEngine::LEGACY_HEAP;

    const auto mono_trace =
        sim::TraceWorkload::fixedSchedule(schedule);
    const sim::ReplicaMetrics mono =
        sim::simulateReplica(a100_cost, sched, *mono_trace);

    sim::ClusterConfig ccfg;
    ccfg.pools.resize(2);
    ccfg.pools[0].name = "prefill";
    ccfg.pools[0].role = sim::PoolRole::PREFILL;
    ccfg.pools[0].cost = &a100_cost;
    ccfg.pools[1].name = "decode";
    ccfg.pools[1].role = sim::PoolRole::DECODE;
    ccfg.pools[1].cost = &a100_cost;
    ccfg.kvTransfer = sim::KvTransferConfig::free();
    if (legacy)
        ccfg.queueEngine = sim::QueueEngine::LEGACY_HEAP;
    const auto disagg_trace =
        sim::TraceWorkload::fixedSchedule(schedule);
    const sim::ClusterMetrics disagg =
        sim::simulateCluster(ccfg, *disagg_trace);

    const bool exact =
        mono.ttft().meanS == disagg.aggregate.ttft().meanS &&
        mono.ttft().p99S == disagg.aggregate.ttft().p99S &&
        mono.tbt().meanS == disagg.aggregate.tbt().meanS &&
        mono.tbt().p99S == disagg.aggregate.tbt().p99S;
    t.addRow({"sanity: A100 disagg, zero-cost KV (batch-1)", "1",
              std::to_string(tp), "-", "1", "1",
              std::to_string(2 * tp), "-", "-",
              fmt(disagg.aggregate.ttft().p99S, 4),
              fmt(units::toMs(disagg.aggregate.tbt().p99S), 2),
              exact ? "bit-exact vs monolithic"
                    : "MISMATCH vs monolithic"});
    fatalIf(!exact, "zero-cost disaggregation diverged from the "
                    "monolithic replica (determinism regression)");

    t.print(std::cout);
    bench::writeCsv("ext_disagg_tax", t);

    std::cout
        << "\nShape: bought monolithically, the compliant design "
           "pays the full sanctions tax — its TPP-capped prefill "
           "sets the fleet size. Disaggregation concentrates that "
           "penalty in the prefill pool and lets decode ride on "
           "unregulated bandwidth, so the tax shrinks toward the "
           "KV-transfer cost; the A100 rows price the same split "
           "without sanctions as the control.\n";
    return 0;
}
