/**
 * @file
 * Figure 1b: device classification under the October 2023 Advanced
 * Computing Rule, plotted as TPP vs performance density.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Figure 1b",
                  "Device classification under October 2023 ACR "
                  "(TPP vs performance density)");

    const devices::Database db;
    const auto specs = db.allSpecs();
    const auto buckets =
        bench::classifyAll<policy::Oct2023Rule>(specs);

    ScatterPlot plot("Oct 2023 ACR classification",
                     "Performance Density (TPP/mm^2)",
                     "Total Processing Performance (TPP)");
    auto series = [](const std::vector<policy::DeviceSpec> &specs,
                     const std::string &name, char glyph) {
        ScatterSeries s;
        s.name = name;
        s.glyph = glyph;
        for (const auto &spec : specs) {
            s.xs.push_back(spec.perfDensity());
            s.ys.push_back(spec.tpp);
        }
        return s;
    };
    plot.addSeries(series(buckets.notApplicable, "Not Applicable", '.'));
    plot.addSeries(series(buckets.nacEligible, "NAC Eligible", 'o'));
    plot.addSeries(series(buckets.licenseRequired, "License Required",
                          'X'));
    plot.print(std::cout);

    Table t({"device", "market", "TPP", "PD", "classification"});
    for (const auto &spec : specs) {
        t.addRow({spec.name, toString(spec.market), fmt(spec.tpp, 0),
                  fmt(spec.perfDensity()),
                  toString(policy::Oct2023Rule::classify(spec))});
    }
    t.print(std::cout);
    bench::writeCsv("fig01b_devices", t);

    std::cout << "\nSummary: " << buckets.licenseRequired.size()
              << " license-required, " << buckets.nacEligible.size()
              << " NAC-eligible, " << buckets.notApplicable.size()
              << " unregulated of " << specs.size() << " devices.\n"
              << "Paper shape: A800/H800 (previously compliant) are now "
              << "regulated; MI210 and RTX 4090 need NAC.\n";
    return 0;
}
