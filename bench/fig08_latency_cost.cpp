/**
 * @file
 * Figure 8: TTFT/TBT latency-cost products over the October 2023 DSE.
 *
 * Paper: the PD-compliant minimum latency-cost 2400-TPP designs are
 * 2.72x/2.64x (GPT-3 prefill/decode) and 2.58x/2.91x (Llama) worse
 * than non-compliant designs.
 */

#include <algorithm>
#include <limits>

#include "bench_util.hh"

using namespace acs;

namespace {

double
minOf(const std::vector<dse::EvaluatedDesign> &designs,
      const dse::Metric &metric)
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto &d : designs)
        best = std::min(best, metric(d));
    return best;
}

void
runWorkload(const core::SanctionsStudy &study,
            const core::Workload &workload)
{
    std::cout << "\n#### Workload: " << workload.model.name << " ####\n";

    ScatterPlot p_ttft(workload.model.name + " TTFT x die cost",
                       "Die Area (mm^2)",
                       "TTFT-cost product (ms * $)");
    ScatterPlot p_tbt(workload.model.name + " TBT x die cost",
                      "Die Area (mm^2)", "TBT-cost product (ms * $)");

    Table t({"TPP", "min TTFT*cost (ok)", "min TTFT*cost (violating)",
             "ratio", "min TBT*cost (ok)", "min TBT*cost (violating)",
             "ratio"});

    const char glyphs[3] = {'1', '2', '4'};
    int idx = 0;
    for (double tpp : {1600.0, 2400.0, 4800.0}) {
        const dse::SweepSpace space = dse::table3Space(
            tpp, {500.0 * units::GBPS, 700.0 * units::GBPS,
                  900.0 * units::GBPS});
        const auto designs = study.runSweep(space, workload);

        std::vector<dse::EvaluatedDesign> ok, violating;
        ScatterSeries s_ok{fmt(tpp, 0) + " TPP ok", glyphs[idx], {}, {}};
        ScatterSeries s_bad{fmt(tpp, 0) + " TPP invalid", '.', {}, {}};
        ScatterSeries b_ok = s_ok, b_bad = s_bad;
        for (const auto &d : designs) {
            const bool valid =
                d.underReticle &&
                policy::Oct2023Rule::classify(d.toSpec()) ==
                    policy::Classification::NOT_APPLICABLE;
            (valid ? ok : violating).push_back(d);
            auto &st = valid ? s_ok : s_bad;
            st.xs.push_back(d.dieAreaMm2);
            st.ys.push_back(d.ttftCostProduct());
            auto &sb = valid ? b_ok : b_bad;
            sb.xs.push_back(d.dieAreaMm2);
            sb.ys.push_back(d.tbtCostProduct());
        }
        p_ttft.addSeries(s_bad);
        p_ttft.addSeries(s_ok);
        p_tbt.addSeries(b_bad);
        p_tbt.addSeries(b_ok);
        ++idx;

        auto product = [](auto member) {
            return [member](const dse::EvaluatedDesign &d) {
                return (d.*member)();
            };
        };
        const auto ttft_cost =
            product(&dse::EvaluatedDesign::ttftCostProduct);
        const auto tbt_cost =
            product(&dse::EvaluatedDesign::tbtCostProduct);

        if (ok.empty()) {
            t.addRow({fmt(tpp, 0), "-", fmt(minOf(violating, ttft_cost),
                                            0),
                      "-", "-", fmt(minOf(violating, tbt_cost), 1),
                      "-"});
            continue;
        }
        const double to = minOf(ok, ttft_cost);
        const double tv = minOf(violating, ttft_cost);
        const double bo = minOf(ok, tbt_cost);
        const double bv = minOf(violating, tbt_cost);
        t.addRow({fmt(tpp, 0), fmt(to, 0), fmt(tv, 0), fmt(to / tv, 2),
                  fmt(bo, 1), fmt(bv, 1), fmt(bo / bv, 2)});
    }

    p_ttft.print(std::cout);
    p_tbt.print(std::cout);
    std::cout << "\n";
    t.print(std::cout);
    bench::writeCsv("fig08_" + bench::slug(workload.model.name), t);
    std::cout << "paper (2400 TPP): GPT-3 ratios 2.72x (TTFT) / 2.64x "
                 "(TBT); Llama 2.58x / 2.91x\n";
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 8",
                  "Latency x die-cost products under the Oct 2023 DSE");
    const core::SanctionsStudy study;
    runWorkload(study, core::gpt3Workload());
    runWorkload(study, core::llamaWorkload());
    return 0;
}
