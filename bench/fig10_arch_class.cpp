/**
 * @file
 * Figure 10: the architecture-based data-center classifier — a device
 * is "data center" when it has > 32 GB memory or > 1600 GB/s memory
 * bandwidth (Sec. 5.2).
 *
 * Paper: no false non-data center, only two false data center devices
 * (NVIDIA L2 and L4, which share the AD104 gaming die).
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Figure 10",
                  "Architecture-based (memory capacity/bandwidth) "
                  "data-center classification");

    const devices::Database db;
    const auto specs = db.allSpecs();

    ScatterPlot plot("Memory capacity vs memory bandwidth",
                     "Memory Capacity (GB)", "Memory BW (GB/s)");
    ScatterSeries cdc{"Consistent DC", 'D', {}, {}};
    ScatterSeries fdc{"False DC", 'F', {}, {}};
    ScatterSeries cndc{"Consistent non-DC", '.', {}, {}};
    ScatterSeries fndc{"False non-DC", 'N', {}, {}};

    Table t({"device", "market", "mem (GB)", "mem BW (GB/s)",
             "consistency"});
    for (const auto &spec : specs) {
        const auto consistency =
            policy::ArchDataCenterClassifier::analyze(spec);
        ScatterSeries *series = nullptr;
        switch (consistency) {
          case policy::MarketingConsistency::CONSISTENT_DC:
            series = &cdc; break;
          case policy::MarketingConsistency::FALSE_DC:
            series = &fdc; break;
          case policy::MarketingConsistency::CONSISTENT_NON_DC:
            series = &cndc; break;
          case policy::MarketingConsistency::FALSE_NON_DC:
            series = &fndc; break;
        }
        series->xs.push_back(spec.memCapacityGB);
        series->ys.push_back(spec.memBandwidthGBps);
        if (consistency == policy::MarketingConsistency::FALSE_DC ||
            consistency == policy::MarketingConsistency::FALSE_NON_DC) {
            t.addRow({spec.name, toString(spec.market),
                      fmt(spec.memCapacityGB, 0),
                      fmt(spec.memBandwidthGBps, 0),
                      toString(consistency)});
        }
    }
    plot.addSeries(cndc);
    plot.addSeries(cdc);
    plot.addSeries(fdc);
    plot.addSeries(fndc);
    plot.print(std::cout);

    std::cout << "\nInconsistent devices under the architectural rule:\n";
    t.print(std::cout);
    bench::writeCsv("fig10_inconsistent", t);

    const auto summary =
        policy::ArchDataCenterClassifier::summarize(specs);
    std::cout << "\nSummary over " << specs.size() << " devices: "
              << summary.falseDc << " false data center, "
              << summary.falseNonDc << " false non-data center\n"
              << "paper: 2 false DC (L2, L4), 0 false non-DC — the "
                 "architectural rule nearly eliminates the "
                 "marketing-based inconsistencies of Fig. 9\n";
    return 0;
}
