/**
 * @file
 * Figure 6 + Table 3: the October 2022 design space exploration.
 *
 * 512 designs at TPP ~= 4800 and 600 GB/s device bandwidth (Table 3
 * parameters), evaluated for GPT-3 175B and Llama 3 8B. The paper's
 * headline: manufacturable compliant designs beat the modeled A100 by
 * -1.2% TTFT / -27% TBT (GPT-3) and -4% / -14.2% (Llama 3), via fewer
 * lanes, bigger L2, and 3.2 TB/s HBM.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

void
runWorkload(const core::SanctionsStudy &study,
            const core::Workload &workload)
{
    std::cout << "\n#### Workload: " << workload.model.name << " ####\n";

    const dse::SweepSpace space =
        dse::table3Space(4800.0, {600.0 * units::GBPS});
    const auto designs = study.runSweep(space, workload);
    const auto baseline = study.evaluateBaseline(workload);

    std::cout << "design points: " << designs.size()
              << " (paper: 512)\n";
    bench::writeCsv("fig06_" + bench::slug(workload.model.name),
                    bench::designTable(designs));

    // Scatter: TTFT vs die area, marking reticle violations.
    ScatterPlot p1(workload.model.name + " prefill vs die area",
                   "Die Area (mm^2)", "TTFT (ms)");
    ScatterSeries ok{"under reticle", '*', {}, {}};
    ScatterSeries over{"over reticle", '.', {}, {}};
    ScatterSeries a100{"modeled A100", 'A',
                       {baseline.dieAreaMm2},
                       {units::toMs(baseline.ttftS)}};
    for (const auto &d : designs) {
        auto &s = d.underReticle ? ok : over;
        s.xs.push_back(d.dieAreaMm2);
        s.ys.push_back(units::toMs(d.ttftS));
    }
    p1.addSeries(over);
    p1.addSeries(ok);
    p1.addSeries(a100);
    p1.print(std::cout);

    ScatterPlot p2(workload.model.name + " decoding vs die area",
                   "Die Area (mm^2)", "TBT (ms)");
    ScatterSeries ok2{"under reticle", '*', {}, {}};
    ScatterSeries over2{"over reticle", '.', {}, {}};
    for (const auto &d : designs) {
        auto &s = d.underReticle ? ok2 : over2;
        s.xs.push_back(d.dieAreaMm2);
        s.ys.push_back(units::toMs(d.tbtS));
    }
    p2.addSeries(over2);
    p2.addSeries(ok2);
    p2.addSeries({"modeled A100", 'A', {baseline.dieAreaMm2},
                  {units::toMs(baseline.tbtS)}});
    p2.print(std::cout);

    ScatterPlot p3(workload.model.name + " prefill vs decoding",
                   "TTFT (ms)", "TBT (ms)");
    ScatterSeries ok3{"under reticle", '*', {}, {}};
    ScatterSeries over3{"over reticle", '.', {}, {}};
    for (const auto &d : designs) {
        auto &s = d.underReticle ? ok3 : over3;
        s.xs.push_back(units::toMs(d.ttftS));
        s.ys.push_back(units::toMs(d.tbtS));
    }
    p3.addSeries(over3);
    p3.addSeries(ok3);
    p3.addSeries({"modeled A100", 'A', {units::toMs(baseline.ttftS)},
                  {units::toMs(baseline.tbtS)}});
    p3.print(std::cout);

    // Optimized manufacturable designs.
    const auto manufacturable = dse::filterReticle(designs);
    std::cout << "manufacturable (<= " << area::RETICLE_LIMIT_MM2
              << " mm^2): " << manufacturable.size() << "\n";

    const auto &best_ttft = dse::minTtft(manufacturable);
    const auto &best_tbt = dse::minTbt(manufacturable);

    // The paper reports one balanced optimum: pick the min-TBT design
    // among those that also beat (or tie) the A100 on TTFT; fall back
    // to the min-TBT design.
    const dse::EvaluatedDesign *optimized = nullptr;
    for (const auto &d : manufacturable) {
        if (d.ttftS <= baseline.ttftS &&
            (!optimized || d.tbtS < optimized->tbtS)) {
            optimized = &d;
        }
    }
    if (!optimized)
        optimized = &best_tbt;

    Table t({"design", "lanes", "L1/core (KiB)", "L2 (MiB)",
             "HBM (TB/s)", "TTFT d", "TBT d", "area (mm^2)"});
    auto row = [&](const std::string &label,
                   const dse::EvaluatedDesign &d) {
        t.addRow({label, std::to_string(d.config.lanesPerCore),
                  fmt(d.config.l1BytesPerCore / units::KIB, 0),
                  fmt(d.config.l2Bytes / units::MIB, 0),
                  fmt(d.config.memBandwidth / units::TBPS, 1),
                  fmtPercent(d.ttftS / baseline.ttftS - 1.0),
                  fmtPercent(d.tbtS / baseline.tbtS - 1.0),
                  fmt(d.dieAreaMm2, 0)});
    };
    row("min TTFT", best_ttft);
    row("min TBT", best_tbt);
    row("optimized (paper-style)", *optimized);
    t.print(std::cout);

    std::cout << "paper optimized: GPT-3 -1.2% TTFT / -27% TBT "
                 "(856 mm^2); Llama 3 -4% / -14.2% (823 mm^2)\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::header("Figure 6 / Table 3",
                  "Oct 2022 DSE at TPP ~4800, 600 GB/s device BW");

    const perf::PerfParams params = bench::perfParamsFromArgs(argc, argv);
    std::cout << "gemm mode: " << perf::toString(params.gemmMode) << "\n";
    const core::SanctionsStudy study(params);
    runWorkload(study, core::gpt3Workload());
    runWorkload(study, core::llamaWorkload());
    return 0;
}
