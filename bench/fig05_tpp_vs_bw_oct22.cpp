/**
 * @file
 * Figure 5: prefill/decode latency when scaling TPP or device
 * bandwidth under the October 2022 rule (GPT-3 175B).
 *
 * Sweep A fixes device bandwidth below 600 GB/s and scales core count
 * (TPP 4000-8000); sweep B fixes TPP at 4759 (103 cores) and scales
 * device bandwidth 500-1000 GB/s. Only the modeled A100 is regulated.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

hw::HardwareConfig
withCores(int cores)
{
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.coreCount = cores;
    // Capped-bandwidth arm: reduced per-PHY bandwidth -> 500 GB/s.
    cfg.perPhyBandwidth = 500.0 / 12.0 * units::GBPS;
    cfg.name = "tpp-sweep-" + std::to_string(cores) + "c";
    return cfg;
}

hw::HardwareConfig
withDeviceBw(double gbps)
{
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.coreCount = 103; // TPP 4759 < 4800
    cfg.perPhyBandwidth = gbps / 12.0 * units::GBPS;
    cfg.name = "bw-sweep-" + std::to_string(static_cast<int>(gbps));
    return cfg;
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 5",
                  "Oct 2022: TPP scaling vs device-bandwidth scaling, "
                  "GPT-3 175B");

    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const auto baseline = study.evaluateBaseline(workload);

    std::cout << "\n-- Sweep A: device BW capped at 500 GB/s, scaling "
                 "TPP via core count --\n";
    Table ta({"target TPP", "cores", "actual TPP", "TTFT (ms)",
              "TBT (ms)", "die area (mm^2)", "Oct 2022"});
    std::vector<dse::EvaluatedDesign> tpp_sweep;
    for (double tpp : {4000.0, 4500.0, 5000.0, 5500.0, 6000.0, 6500.0,
                       7000.0, 7500.0, 8000.0}) {
        const int cores = hw::coresForTpp(tpp, 16, 16, 4,
                                          hw::modeledA100().clockHz);
        const auto report =
            study.evaluateDesign(withCores(cores), workload);
        tpp_sweep.push_back(report.design);
        ta.addRow({fmt(tpp, 0), std::to_string(cores),
                   fmt(report.design.tpp, 0),
                   fmt(units::toMs(report.design.ttftS)),
                   fmt(units::toMs(report.design.tbtS), 4),
                   fmt(report.design.dieAreaMm2, 1),
                   toString(report.rules.oct2022)});
    }
    ta.print(std::cout);
    bench::writeCsv("fig05_tpp_sweep", ta);

    std::cout << "\n-- Sweep B: TPP capped at 4759 (103 cores), scaling "
                 "device bandwidth --\n";
    Table tb({"device BW (GB/s)", "TTFT (ms)", "TBT (ms)", "Oct 2022"});
    std::vector<dse::EvaluatedDesign> bw_sweep;
    for (double bw : {500.0, 600.0, 700.0, 800.0, 900.0, 1000.0}) {
        const auto report =
            study.evaluateDesign(withDeviceBw(bw), workload);
        bw_sweep.push_back(report.design);
        tb.addRow({fmt(bw, 0), fmt(units::toMs(report.design.ttftS)),
                   fmt(units::toMs(report.design.tbtS), 4),
                   toString(report.rules.oct2022)});
    }
    tb.print(std::cout);
    bench::writeCsv("fig05_bw_sweep", tb);

    ScatterPlot plot("TTFT vs TBT under Oct 2022 scaling knobs",
                     "Time to First Token (ms)",
                     "Time Between Tokens (ms)");
    ScatterSeries st{"TPP sweep (BW<600)", 'T', {}, {}};
    for (const auto &d : tpp_sweep) {
        st.xs.push_back(units::toMs(d.ttftS));
        st.ys.push_back(units::toMs(d.tbtS));
    }
    ScatterSeries sb{"BW sweep (TPP<4800)", 'B', {}, {}};
    for (const auto &d : bw_sweep) {
        sb.xs.push_back(units::toMs(d.ttftS));
        sb.ys.push_back(units::toMs(d.tbtS));
    }
    ScatterSeries sa{"modeled A100", 'A', {units::toMs(baseline.ttftS)},
                     {units::toMs(baseline.tbtS)}};
    plot.addSeries(st);
    plot.addSeries(sb);
    plot.addSeries(sa);
    plot.print(std::cout);

    // Headline comparisons (paper values in parentheses).
    const auto &d4000 = tpp_sweep[0];
    const auto &d5000 = tpp_sweep[2];
    const auto &d7000 = tpp_sweep[6];
    std::cout << "\nTTFT 4000 -> 5000 TPP: "
              << fmtPercent(d5000.ttftS / d4000.ttftS - 1.0)
              << "   (paper: -16.2%)\n";
    std::cout << "TTFT 4000 -> 7000 TPP: "
              << fmtPercent(d7000.ttftS / d4000.ttftS - 1.0)
              << "   (paper: -34.1%)\n";
    std::cout << "Die area 4000 -> 7000 TPP: "
              << fmtPercent(d7000.dieAreaMm2 / d4000.dieAreaMm2 - 1.0)
              << " to " << fmt(d7000.dieAreaMm2, 0)
              << " mm^2 (paper: +48.3% to 854 mm^2)\n";
    std::cout << "TBT 600 -> 1000 GB/s device BW: "
              << fmtPercent(bw_sweep[5].tbtS / bw_sweep[1].tbtS - 1.0, 2)
              << "   (paper: -0.27%)\n";
    return 0;
}
