/**
 * @file
 * Extension bench: the quantization loophole in the TPP definition.
 *
 * TPP normalizes by operation bitwidth (TOPS x bits), so an 8-bit
 * design at a fixed TPP budget may pack 2x the MAC units of a 16-bit
 * design — and quantized inference also halves its weight/KV traffic.
 * This bench quantifies how much LLM performance a fixed TPP ceiling
 * still permits if the deployer quantizes to 8 bits, a regulatory gap
 * implied by Sec. 2.1's bitwidth-scaled definition.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: bitwidth/quantization escape",
                  "Equal-TPP FP16 vs 8-bit designs");

    const double tpp = 4800.0;
    const model::InferenceSetting fp16_setting;
    model::InferenceSetting int8_setting;
    int8_setting.bytesPerValue = 1;

    // FP16 reference design at the TPP ceiling.
    hw::HardwareConfig fp16 = hw::modeledA100();
    fp16.name = "fp16-4800tpp";
    fp16.coreCount = hw::coresForTpp(tpp, 16, 16, 4, fp16.clockHz, 16);

    // 8-bit design: same ceiling, bitwidth 8 -> twice the MAC budget.
    hw::HardwareConfig int8 = hw::modeledA100();
    int8.name = "int8-4800tpp";
    int8.opBitwidth = 8;
    int8.coreCount = hw::coresForTpp(tpp, 16, 16, 4, int8.clockHz, 8);

    Table t({"design", "TPP", "peak TOPS", "cores",
             "GPT-3 TTFT (ms)", "GPT-3 TBT (ms)"});
    const perf::SystemConfig sys{4};
    const auto gpt3 = model::gpt3_175b();

    const auto r16 = perf::InferenceSimulator(fp16).run(
        gpt3, fp16_setting, sys);
    const auto r8 = perf::InferenceSimulator(int8).run(
        gpt3, int8_setting, sys);

    t.addRow({fp16.name, fmt(fp16.tpp(), 0),
              fmt(fp16.peakTensorTops(), 0),
              std::to_string(fp16.coreCount),
              fmt(units::toMs(r16.ttftS), 1),
              fmt(units::toMs(r16.tbtS), 4)});
    t.addRow({int8.name, fmt(int8.tpp(), 0),
              fmt(int8.peakTensorTops(), 0),
              std::to_string(int8.coreCount),
              fmt(units::toMs(r8.ttftS), 1),
              fmt(units::toMs(r8.tbtS), 4)});
    t.print(std::cout);

    std::cout << "\nAt the same 4800 TPP ceiling, the 8-bit design "
                 "runs quantized GPT-3 "
              << fmt(r16.ttftS / r8.ttftS, 2) << "x faster prefill and "
              << fmt(r16.tbtS / r8.tbtS, 2)
              << "x faster decode than the FP16 design running FP16 — "
                 "the bitwidth normalization in TPP leaves quantized "
                 "inference under-regulated.\n";

    std::cout << "\nNote: TPP already counts the max TOPSxbitwidth "
                 "product over supported modes; the gap exists because "
                 "workload precision, not hardware capability, halves "
                 "the traffic. Policy fix per Sec. 5.3: regulate "
                 "memory bandwidth alongside TPP.\n";
    return 0;
}
