/**
 * @file
 * Extension bench (Secs. 2.3/2.5, Fig. 2 corollary): the economics of
 * escaping the October 2023 rule by *adding* die area.
 *
 * A 4799-TPP device is unregulated only above ~3000 mm^2 of
 * applicable silicon — 3.5x the reticle limit — so it must be a
 * multi-chip module padded with silicon. This bench sweeps chiplet
 * counts, inflates on-die SRAM to clear the area floor, and prices
 * the escape against the sanctioned monolithic design.
 *
 * The chiplet-count and padding enumerations come from
 * coevo/escape.hh — the same lists the closed-loop arms race
 * (ext_coevo_arms_race) searches, so probe and engine cannot drift.
 */

#include "bench_util.hh"

#include "coevo/escape.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: MCM area escape",
                  "Cost of ducking the Oct 2023 rule by adding die "
                  "area at 4799 TPP");

    const double tpp = 4799.0;
    const double floor_area =
        policy::Oct2023Rule::minUnregulatedDieArea(tpp);
    std::cout << "area floor for unregulated " << fmt(tpp, 0)
              << "-TPP: " << fmt(floor_area, 0) << " mm^2 ("
              << fmt(floor_area / area::RETICLE_LIMIT_MM2, 2)
              << "x the reticle limit)\n\n";

    const area::AreaModel area_model;
    const area::PackageCostModel package;
    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();

    // The sanctioned monolithic baseline: a compact 4799-TPP design.
    hw::HardwareConfig mono = hw::modeledA100();
    mono.name = "monolithic-4799";
    mono.coreCount = hw::coresForTpp(tpp, 16, 16, 4, mono.clockHz);
    const auto mono_report = study.evaluateDesign(mono, workload);
    const double mono_cost =
        package.packagedDeviceCost(1, mono_report.design.dieAreaMm2,
                                   hw::ProcessNode::N7)
            .totalUsd;

    Table t({"chiplets", "per-die cores", "L2/die (MiB)",
             "per-die area (mm^2)", "package area (mm^2)", "Oct 2023",
             "device cost", "cost vs monolithic", "TTFT d", "TBT d"});

    const coevo::L2PaddingGrid grid = coevo::l2PaddingGrid();
    for (int dies : coevo::mcmChipletCounts()) {
        // Split the compute across chiplets, then inflate the global
        // buffer until the package clears the area floor.
        hw::HardwareConfig chiplet = hw::modeledA100();
        chiplet.diesPerPackage = dies;
        chiplet.coreCount = std::max(1, mono.coreCount / dies);
        chiplet.name = "mcm-" + std::to_string(dies);

        bool feasible = false;
        for (double l2_mib = grid.startMib; l2_mib <= grid.stopMib;
             l2_mib += grid.stepMib) {
            chiplet.l2Bytes = l2_mib * units::MIB;
            const double per_die =
                area_model.breakdown(chiplet).total();
            if (per_die > area::RETICLE_LIMIT_MM2)
                break;
            if (per_die * dies > floor_area) {
                feasible = true;
                break;
            }
        }
        if (!feasible) {
            t.addRow({std::to_string(dies), "-", "-", "-", "-",
                      "infeasible", "-", "-", "-", "-"});
            continue;
        }

        const auto report = study.evaluateDesign(chiplet, workload);
        const double per_die = report.design.dieAreaMm2 / dies;
        const auto cost = package.packagedDeviceCost(
            dies, per_die, hw::ProcessNode::N7);

        t.addRow({std::to_string(dies),
                  std::to_string(chiplet.coreCount),
                  fmt(chiplet.l2Bytes / units::MIB, 0),
                  fmt(per_die, 0), fmt(report.design.dieAreaMm2, 0),
                  toString(report.rules.oct2023DataCenter),
                  "$" + fmt(cost.totalUsd, 0),
                  fmt(cost.totalUsd / mono_cost, 2) + "x",
                  fmtPercent(report.ttftDelta()),
                  fmtPercent(report.tbtDelta())});
    }
    t.print(std::cout);

    std::cout << "\nmonolithic sanctioned baseline: "
              << fmt(mono_report.design.dieAreaMm2, 0) << " mm^2, $"
              << fmt(mono_cost, 0) << " ("
              << toString(mono_report.rules.oct2023DataCenter)
              << ")\n"
              << "Shape: escaping the rule is possible but multiplies "
                 "device cost — the PD floor acts as an economic "
                 "barrier, not a physical one (Sec. 4.4).\n";
    return 0;
}
