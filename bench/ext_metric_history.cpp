/**
 * @file
 * Extension bench (Sec. 6.1): three generations of export-control
 * performance metrics — CTP (1991), APP (2006), TPP (2022) — evaluated
 * on the same modeled devices, showing how the metric choice reorders
 * the same hardware.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: metric history",
                  "CTP vs APP vs TPP on the same modeled devices");

    struct Entry
    {
        const char *label;
        hw::HardwareConfig cfg;
    };
    std::vector<Entry> entries;
    entries.push_back({"modeled A100", hw::modeledA100()});
    entries.push_back({"modeled A800", hw::modeledA800()});
    entries.push_back({"modeled H20-style", hw::modeledH20Style()});

    // A vector-heavy, tensor-light design (gaming-like): same SIMT
    // resources, quarter-size systolic arrays.
    hw::HardwareConfig gaming = hw::modeledA100();
    gaming.name = "vector-heavy gaming-like";
    gaming.systolicDimX = 8;
    gaming.systolicDimY = 8;
    entries.push_back({"vector-heavy gaming-like", gaming});

    // A tensor-monster with weak vector units.
    hw::HardwareConfig tensor = hw::modeledA100();
    tensor.name = "tensor-heavy accelerator";
    tensor.systolicDimX = 32;
    tensor.systolicDimY = 32;
    tensor.vectorWidth = 8;
    entries.push_back({"tensor-heavy accelerator", tensor});

    Table t({"device", "CTP (MTOPS)", "APP (WT)", "TPP",
             "TPP rank", "APP rank"});

    std::vector<policy::MetricHistory> metrics;
    for (const auto &entry : entries)
        metrics.push_back(policy::metricHistory(entry.cfg));

    auto rank_of = [&](std::size_t idx, auto field) {
        int rank = 1;
        for (std::size_t j = 0; j < metrics.size(); ++j) {
            if (field(metrics[j]) > field(metrics[idx]))
                ++rank;
        }
        return rank;
    };

    for (std::size_t i = 0; i < entries.size(); ++i) {
        t.addRow({entries[i].label, fmt(metrics[i].ctpMtops, 0),
                  fmt(metrics[i].appWt, 2), fmt(metrics[i].tpp, 0),
                  std::to_string(rank_of(
                      i, [](const auto &m) { return m.tpp; })),
                  std::to_string(rank_of(
                      i, [](const auto &m) { return m.appWt; }))});
    }
    t.print(std::cout);

    std::cout << "\nShape (Sec. 6.1): APP, built on 64-bit FLOPs, "
                 "ranks the vector-heavy gaming design above the "
                 "tensor accelerator; TPP reverses the order — each "
                 "metric generation regulates a different kind of "
                 "machine.\n";
    return 0;
}
