/**
 * @file
 * Extension bench: the regulator-vs-designer arms race.
 *
 * The static escape benches (ext_mcm_escape, ext_gaming_policy,
 * ext_rule_evolution) each probe one dodge against one frozen rule.
 * This bench closes the loop with coevo::ArmsRace: an escape-seeking
 * designer (best compliant TTFT over the escape portfolio,
 * dse::AdaptiveSearch inner loop) alternating with a rule-tightening
 * regulator (per-knob tightenings under a collateral-damage budget on
 * the gaming/graphics catalogue), for both mechanisms —
 * classification thresholds (policy::ParamRule) and the firmware
 * offline-licensing throughput cap (policy::FirmwareLicenseRule,
 * arxiv 2404.18308).
 *
 * Emits the round-by-round trajectory of both races plus the
 * threshold-vs-firmware frontier (final escaped performance vs
 * realized collateral at a ladder of budgets) to
 * results/ext_coevo_arms_race.csv, and plots both frontiers on the
 * same axes. The bench asserts the monotonicity contract: at a fixed
 * budget the escaped-performance trajectory never increases ("hold"
 * is always a candidate, and the designer oracle is a deterministic
 * function of the rule alone).
 *
 * Deterministic: iterates are ACS_THREADS-independent (the inner
 * search is; the outer loop is serial), so re-running writes
 * byte-identical CSV for every thread count — CI diffs it.
 */

#include "bench_util.hh"

#include "coevo/arms_race.hh"
#include "common/scatter.hh"

using namespace acs;

namespace {

constexpr double kBudget = 0.10; //!< trajectory collateral budget
constexpr int kRounds = 8;       //!< regulator/designer rounds

/** Percent with one decimal ("52.7"). */
std::string
pct(double frac)
{
    return fmt(100.0 * frac, 1);
}

/** Append one race's rounds as kind=trajectory rows and print its
 *  round table; returns the final round for the frontier narrative. */
const coevo::RoundRecord &
emitTrajectory(const coevo::ArmsRaceResult &res, Table &csv)
{
    Table t({"round", "regulator move", "rule", "best escape",
             "escaped_perf_pct", "collateral_pct", "ttft_ms", "tbt_ms"});
    double prev = INFINITY;
    for (const coevo::RoundRecord &r : res.rounds) {
        fatalIf(r.designer.escapedPerf > prev + 1e-12,
                "escaped performance increased at round " +
                    std::to_string(r.round) +
                    " (monotonicity regression)");
        prev = r.designer.escapedPerf;
        t.addRow({std::to_string(r.round), r.moveLabel, r.ruleDesc,
                  r.designer.spaceLabel, pct(r.designer.escapedPerf),
                  pct(r.collateral),
                  fmt(units::toMs(r.designer.ttftS), 1),
                  fmt(units::toMs(r.designer.tbtS), 4)});
        csv.addRow({"trajectory", toString(res.config.mechanism),
                    std::to_string(r.round),
                    fmt(res.config.collateralBudget, 2), r.moveLabel,
                    r.ruleDesc, r.designer.spaceLabel,
                    r.designer.designName,
                    fmt(r.designer.escapedPerf, 4),
                    fmt(r.collateral, 4),
                    fmt(units::toMs(r.designer.ttftS), 3),
                    fmt(units::toMs(r.designer.tbtS), 5)});
    }
    std::cout << "\n-- " << toString(res.config.mechanism)
              << " mechanism (budget " << pct(res.config.collateralBudget)
              << "%, fixed point "
              << (res.roundsToFixedPoint >= 0
                      ? "round " + std::to_string(res.roundsToFixedPoint)
                      : "not reached")
              << ") --\n";
    t.print(std::cout);
    return res.rounds.back();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::header("Extension: policy co-evolution arms race",
                  "Threshold rules vs licensing firmware against an "
                  "escape-optimizing designer");
    bench::initObs(argc, argv);

    coevo::ArmsRaceConfig cfg;
    cfg.rounds = kRounds;
    cfg.collateralBudget = kBudget;

    Table csv({"kind", "mechanism", "round", "budget", "move", "rule",
               "escape_space", "design", "escaped_perf", "collateral",
               "ttft_ms", "tbt_ms"});

    // -- trajectories at the reference budget ---------------------------
    cfg.mechanism = coevo::Mechanism::THRESHOLD;
    coevo::ArmsRace threshold_race(cfg);
    const coevo::ArmsRaceResult thr = threshold_race.run();
    std::cout << "\nunconstrained reference TTFT "
              << fmt(units::toMs(thr.referenceTtftS), 1) << " ms, TBT "
              << fmt(units::toMs(thr.referenceTbtS), 4) << " ms\n";
    const coevo::RoundRecord &thr_final = emitTrajectory(thr, csv);

    cfg.mechanism = coevo::Mechanism::FIRMWARE;
    coevo::ArmsRace firmware_race(cfg);
    const coevo::ArmsRaceResult fw = firmware_race.run();
    const coevo::RoundRecord &fw_final = emitTrajectory(fw, csv);

    // -- threshold-vs-firmware frontier --------------------------------
    // Final escaped performance vs realized collateral after a full
    // race at each budget; memos are shared across budgets inside one
    // ArmsRace, so the ladder replays the common prefix at zero cost.
    const std::vector<double> budgets = {0.0, 0.02, 0.05, 0.10, 0.20};
    const std::vector<coevo::FrontierPoint> frontier =
        threshold_race.frontier(budgets);

    ScatterSeries thr_series{"threshold rule", 'T', {}, {}};
    ScatterSeries fw_series{"licensing firmware", 'F', {}, {}};
    for (const coevo::FrontierPoint &p : frontier) {
        csv.addRow({"frontier", toString(p.mechanism), "-",
                    fmt(p.budget, 2), "-", p.ruleDesc, "-", "-",
                    fmt(p.escapedPerf, 4), fmt(p.collateral, 4), "-",
                    "-"});
        ScatterSeries &s = p.mechanism == coevo::Mechanism::THRESHOLD
                               ? thr_series
                               : fw_series;
        s.xs.push_back(100.0 * p.collateral);
        s.ys.push_back(100.0 * p.escapedPerf);
    }

    ScatterPlot plot("Escaped performance vs collateral damage "
                     "(final round per budget)",
                     "collateral damage [% of gaming catalogue]",
                     "escaped performance [% of unconstrained]");
    plot.setLimits({0.0, std::nullopt, 0.0, 100.0});
    plot.addSeries(thr_series);
    plot.addSeries(fw_series);
    std::cout << "\n";
    plot.print(std::cout);

    bench::writeCsv("ext_coevo_arms_race", csv);

    std::cout << "\nShape: the threshold race opens at "
              << pct(thr.rounds.front().designer.escapedPerf)
              << "% escaped performance — int8 relabeling plus MCM "
                 "scale-out and L2 padding fully dodges the canonical "
                 "metric — and " << kRounds
              << " rounds of tightening only drag it to "
              << pct(thr_final.designer.escapedPerf) << "% at "
              << pct(thr_final.collateral)
              << "% collateral. The firmware meter counts retired "
                 "FP16-equivalent ops, so relabeling buys nothing: it "
                 "starts at "
              << pct(fw.rounds.front().designer.escapedPerf)
              << "% and reaches " << pct(fw_final.designer.escapedPerf)
              << "% at the same budget — its frontier dominates the "
                 "threshold frontier at every collateral level. The "
                 "flat TBT column is Fig. 5 closed-loop: decode rides "
                 "on unregulated HBM either way.\n";
    return 0;
}
