/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 */

#ifndef ACS_BENCH_BENCH_UTIL_HH
#define ACS_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/acs.hh"

namespace acs {
namespace bench {

namespace obs_detail {

/** Trace-file destination chosen by initObs ("" = tracing off). */
inline std::string &
tracePath()
{
    static std::string path;
    return path;
}

/** atexit hook: print the per-stage summary and write the trace. */
inline void
reportObs()
{
    if (!obs::enabled())
        return;
    std::cout << "\n--- observability summary ---\n";
    obs::summaryTable().print(std::cout);
    const std::string &path = tracePath();
    if (!path.empty() && obs::writeChromeTraceFile(path)) {
        std::cout << "[trace] " << path << " ("
                  << obs::traceEventCount()
                  << " spans; load in chrome://tracing or Perfetto)\n";
    }
}

} // namespace obs_detail

/**
 * Observability entry point for the bench harness.
 *
 * Enables recording when either the ACS_TRACE environment variable
 * names a trace file or a `--trace=<file>` argument is present (the
 * flag wins when both are set), and registers an atexit hook that
 * prints the per-stage summary table and writes the Chrome-trace
 * JSON after the bench finishes. Idempotent; called automatically by
 * header(), so every fig/ext bench honours ACS_TRACE without
 * per-bench wiring. Benches that accept argv pass it here to also
 * honour the flag.
 */
inline void
initObs(int argc = 0, char **argv = nullptr)
{
    static bool registered = false;
    std::string path = obs::enableFromEnv();
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            path = argv[i] + 8;
            obs::setEnabled(true);
        }
    }
    if (!path.empty())
        obs_detail::tracePath() = path;
    if (obs::enabled() && !registered) {
        registered = true;
        std::atexit(obs_detail::reportObs);
    }
}

/**
 * Build the study's PerfParams from bench arguments.
 *
 * Recognizes `--gemm-mode={analytic,tile_sim,cycle_sim}` and
 * `--gemm-cache={on,off}` (fatal on any other value) and leaves every
 * other parameter at its default, so the DSE benches can sweep with
 * the closed-form roofline, the wave-level tile simulator, or the
 * event-driven cycle simulator, with or without the sweep-scoped
 * cross-design GEMM cache. The default (analytic) reproduces the
 * committed CSVs byte for byte; simulated output is byte-identical
 * cache-on vs cache-off (the cache stores exact result bits —
 * docs/PERF.md). The error message comes from perf::gemmModeNames()
 * so the CLI and the benches always advertise the same mode list.
 */
inline perf::PerfParams
perfParamsFromArgs(int argc, char **argv)
{
    perf::PerfParams params;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--gemm-mode=", 12) == 0) {
            const std::string value = argv[i] + 12;
            fatalIf(!perf::parseGemmMode(value, &params.gemmMode),
                    "unknown --gemm-mode '" + value + "' (expected " +
                        perf::gemmModeNames() + ")");
        } else if (std::strncmp(argv[i], "--gemm-cache=", 13) == 0) {
            const std::string value = argv[i] + 13;
            fatalIf(value != "on" && value != "off",
                    "unknown --gemm-cache '" + value +
                        "' (expected on or off)");
            params.cacheTileSimGemms = value == "on";
        }
    }
    return params;
}

/** Whether @p flag appears verbatim among the bench arguments. */
inline bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/**
 * Whether `--legacy-sim` was passed: run the serving benches on the
 * reference simulation path (binary-heap event queue, mutex+map cost
 * memos) instead of the calendar-queue/flat-memo fast path. Both
 * paths write byte-identical CSVs — CI diffs them to prove it.
 */
inline bool
legacySim(int argc, char **argv)
{
    return hasFlag(argc, argv, "--legacy-sim");
}

/**
 * Write a table as results/<name>.csv so the figures can be re-plotted
 * with external tooling; prints the path on success.
 */
inline void
writeCsv(const std::string &name, const Table &table)
{
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    const std::string path = "results/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write " + path);
        return;
    }
    table.printCsv(out);
    std::cout << "[csv] " << path << " (" << table.rowCount()
              << " rows)\n";
}


/** File-name slug from a free-form label ("GPT-3 175B" -> "gpt-3_175b"). */
inline std::string
slug(const std::string &label)
{
    std::string out;
    for (char c : label) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '_')
            out += '_';
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

/** Full per-design dump of an evaluated sweep (one row per design). */
inline Table
designTable(const std::vector<dse::EvaluatedDesign> &designs)
{
    Table t({"name", "tpp", "systolic_dim", "lanes", "cores",
             "l1_kib", "l2_mib", "mem_bw_tbps", "dev_bw_gbps",
             "die_area_mm2", "perf_density", "die_cost_usd",
             "ttft_ms", "tbt_ms", "under_reticle", "oct2023"});
    for (const auto &d : designs) {
        t.addRow({d.config.name, fmt(d.tpp, 1),
                  std::to_string(d.config.systolicDimX),
                  std::to_string(d.config.lanesPerCore),
                  std::to_string(d.config.coreCount),
                  fmt(d.config.l1BytesPerCore / units::KIB, 0),
                  fmt(d.config.l2Bytes / units::MIB, 0),
                  fmt(d.config.memBandwidth / units::TBPS, 2),
                  fmt(units::toGBps(d.config.deviceBandwidth()), 0),
                  fmt(d.dieAreaMm2, 1), fmt(d.perfDensity, 3),
                  fmt(d.dieCostUsd, 2), fmt(units::toMs(d.ttftS), 3),
                  fmt(units::toMs(d.tbtS), 5),
                  d.underReticle ? "1" : "0",
                  toString(policy::Oct2023Rule::classify(d.toSpec()))});
    }
    return t;
}

/** Glyph per classification for scatter plots. */
inline char
glyph(policy::Classification c)
{
    switch (c) {
      case policy::Classification::NOT_APPLICABLE:   return '.';
      case policy::Classification::NAC_ELIGIBLE:     return 'o';
      case policy::Classification::LICENSE_REQUIRED: return 'X';
    }
    return '?';
}

/** Print a standard bench header (and arm ACS_TRACE observability). */
inline void
header(const std::string &id, const std::string &caption)
{
    initObs();
    std::cout << "\n" << std::string(72, '=') << "\n"
              << id << ": " << caption << "\n"
              << std::string(72, '=') << "\n";
}

/** Split a spec list into three classification buckets. */
struct ClassifiedSpecs
{
    std::vector<policy::DeviceSpec> notApplicable;
    std::vector<policy::DeviceSpec> nacEligible;
    std::vector<policy::DeviceSpec> licenseRequired;
};

template <typename Rule>
ClassifiedSpecs
classifyAll(const std::vector<policy::DeviceSpec> &specs)
{
    ClassifiedSpecs out;
    for (const policy::DeviceSpec &spec : specs) {
        switch (Rule::classify(spec)) {
          case policy::Classification::NOT_APPLICABLE:
            out.notApplicable.push_back(spec);
            break;
          case policy::Classification::NAC_ELIGIBLE:
            out.nacEligible.push_back(spec);
            break;
          case policy::Classification::LICENSE_REQUIRED:
            out.licenseRequired.push_back(spec);
            break;
        }
    }
    return out;
}

} // namespace bench
} // namespace acs

#endif // ACS_BENCH_BENCH_UTIL_HH
