/**
 * @file
 * Extension bench: sensitivity of the paper's conclusions to the
 * inference setting (batch size and sequence length).
 *
 * The paper fixes batch 32 / input 2048 / output 1024 (Sec. 3.2); this
 * bench sweeps both knobs on the modeled A100 and on the Fig. 6
 * optimized design, showing that the headline ("sanctions bind prefill,
 * decode remains improvable through memory bandwidth") holds across
 * serving regimes, and where the compute/bandwidth crossover sits.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

hw::HardwareConfig
optimizedDesign()
{
    // The Fig. 6 style optimum: Oct-2022 compliant, HBM maxed.
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.name = "fig6-optimized";
    cfg.coreCount = hw::coresForTpp(4800.0, 16, 16, 4, cfg.clockHz);
    cfg.memBandwidth = 3.2 * units::TBPS;
    return cfg;
}

} // anonymous namespace

int
main()
{
    bench::header("Extension: batch/sequence sweep",
                  "Do the paper's conclusions survive other serving "
                  "settings?");

    const hw::HardwareConfig a100 = hw::modeledA100();
    const hw::HardwareConfig opt = optimizedDesign();
    const perf::InferenceSimulator sim_a100(a100);
    const perf::InferenceSimulator sim_opt(opt);
    const perf::SystemConfig sys{4};
    const auto gpt3 = model::gpt3_175b();

    std::cout << "\n-- batch sweep (input 2048, output 1024) --\n";
    Table tb({"batch", "A100 TTFT (ms)", "A100 TBT (ms)",
              "opt TTFT d", "opt TBT d", "A100 decode MFU"});
    for (int batch : {1, 4, 8, 16, 32, 64, 128}) {
        model::InferenceSetting setting;
        setting.batch = batch;
        const auto ra = sim_a100.run(gpt3, setting, sys);
        const auto ro = sim_opt.run(gpt3, setting, sys);
        tb.addRow({std::to_string(batch),
                   fmt(units::toMs(ra.ttftS), 1),
                   fmt(units::toMs(ra.tbtS), 3),
                   fmtPercent(ro.ttftS / ra.ttftS - 1.0),
                   fmtPercent(ro.tbtS / ra.tbtS - 1.0),
                   fmtPercent(ra.decode.mfu(a100.peakTensorTops() *
                                            1e12),
                              2)});
    }
    tb.print(std::cout);

    std::cout << "\n-- sequence sweep (batch 32, output = input/2) --\n";
    Table ts({"input len", "A100 TTFT (ms)", "A100 TBT (ms)",
              "opt TTFT d", "opt TBT d"});
    for (int len : {256, 512, 1024, 2048, 4096, 8192}) {
        model::InferenceSetting setting;
        setting.inputLen = len;
        setting.outputLen = len / 2;
        const auto ra = sim_a100.run(gpt3, setting, sys);
        const auto ro = sim_opt.run(gpt3, setting, sys);
        ts.addRow({std::to_string(len),
                   fmt(units::toMs(ra.ttftS), 1),
                   fmt(units::toMs(ra.tbtS), 3),
                   fmtPercent(ro.ttftS / ra.ttftS - 1.0),
                   fmtPercent(ro.tbtS / ra.tbtS - 1.0)});
    }
    ts.print(std::cout);

    // A third model size between the paper's two evaluation points.
    std::cout << "\n-- Llama 3 70B (extension model, TP=4) --\n";
    const auto llama70 = model::llama3_70b();
    const model::InferenceSetting setting;
    const auto ra = sim_a100.run(llama70, setting, sys);
    const auto ro = sim_opt.run(llama70, setting, sys);
    Table t70({"metric", "A100", "optimized", "delta"});
    t70.addRow({"TTFT / layer (ms)", fmt(units::toMs(ra.ttftS), 1),
                fmt(units::toMs(ro.ttftS), 1),
                fmtPercent(ro.ttftS / ra.ttftS - 1.0)});
    t70.addRow({"TBT / layer (ms)", fmt(units::toMs(ra.tbtS), 4),
                fmt(units::toMs(ro.tbtS), 4),
                fmtPercent(ro.tbtS / ra.tbtS - 1.0)});
    t70.addRow({"fits 80 GB x4", ra.fitsMemory ? "yes" : "no",
                ro.fitsMemory ? "yes" : "no", ""});
    t70.print(std::cout);

    std::cout << "\nShape: decode improvements from unregulated memory "
                 "bandwidth persist at every batch size and context "
                 "length; prefill stays TPP-bound everywhere.\n";
    return 0;
}
