/**
 * @file
 * Figure 12 / Table 5: the restricted-parameter DSE — architectural
 * parameters at or below the modeled A100 (2304 configurations) —
 * grouped by the single fixed parameter that most limits each
 * inference phase (Sec. 5.3).
 *
 * Paper: 32 KB L1 devices have median TTFT +58.7% (GPT-3) / +52.6%
 * (Llama) vs the A100 with 1.59x/1.43x narrower distributions;
 * 0.8 TB/s memory BW devices have median TBT +110% / +58.7% with
 * 41.8x/42.4x narrower distributions.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

void
runWorkload(const core::SanctionsStudy &study,
            const core::Workload &workload)
{
    std::cout << "\n#### Workload: " << workload.model.name << " ####\n";

    const auto baseline = study.evaluateBaseline(workload);
    const auto designs =
        dse::filterReticle(study.runSweep(dse::table5Space(), workload));
    std::cout << "reticle-compliant Table-5 designs: " << designs.size()
              << " (paper space: 2304 before filtering)\n\n";

    using policy::ArchParameter;
    const std::vector<std::pair<
        std::string, std::function<bool(const dse::EvaluatedDesign &)>>>
        groups = {
            {"8 Lane", dse::fixedParameter(
                           ArchParameter::LANES_PER_CORE, 8.0)},
            {"32 KB L1", dse::fixedParameter(ArchParameter::L1_PER_CORE,
                                             32.0 * units::KIB)},
            {"8 MB L2", dse::fixedParameter(ArchParameter::L2_SIZE,
                                            8.0 * units::MIB)},
            {"0.8 TB/s M. BW", dse::fixedParameter(
                                   ArchParameter::MEM_BANDWIDTH,
                                   0.8 * units::TBPS)},
            {"400 GB/s D. BW", dse::fixedParameter(
                                   ArchParameter::DEVICE_BANDWIDTH,
                                   400.0 * units::GBPS)},
        };

    const auto dists = dse::indicatorStudy(designs, groups);
    const double base_ttft = units::toMs(baseline.ttftS);
    const double base_tbt = units::toMs(baseline.tbtS);

    Table t({"group", "designs", "TTFT med vs A100", "TTFT narrowing",
             "TBT med vs A100", "TBT narrowing"});
    for (const auto &d : dists) {
        t.addRow({d.label, std::to_string(d.designCount),
                  fmtPercent(d.ttft.median / base_ttft - 1.0),
                  fmt(d.ttftNarrowing, 1) + "x",
                  fmtPercent(d.tbt.median / base_tbt - 1.0),
                  fmt(d.tbtNarrowing, 1) + "x"});
    }
    t.print(std::cout);
    bench::writeCsv("fig12_" + bench::slug(workload.model.name), t);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    bench::header("Figure 12 / Table 5",
                  "Restricted-parameter DSE distributions (parameters "
                  "at or below the modeled A100)");
    const perf::PerfParams params = bench::perfParamsFromArgs(argc, argv);
    std::cout << "gemm mode: " << perf::toString(params.gemmMode) << "\n";
    const core::SanctionsStudy study(params);
    runWorkload(study, core::gpt3Workload());
    runWorkload(study, core::llamaWorkload());
    std::cout << "\npaper: '32 KB L1' -> median TTFT +58.7% (GPT-3) / "
                 "+52.6% (Llama), 1.59x/1.43x narrower; '0.8 TB/s' -> "
                 "median TBT +110% / +58.7%, 41.8x/42.4x narrower.\n";
    return 0;
}
