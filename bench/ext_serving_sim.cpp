/**
 * @file
 * Extension bench: request-level latency under load, simulated.
 *
 * The closed-form serving arithmetic (ext_serving_tax) prices the
 * sanctions tax at the mean; this bench prices it at the tail. For
 * the modeled A100, the modeled H100, and the best Oct-2023-compliant
 * 2400-TPP design, drive one tensor-parallel replica with an open-loop
 * Poisson stream at increasing offered loads and record the simulated
 * TTFT/TBT percentiles, SLO attainment, and goodput — the
 * latency-vs-load curves steady-state throughput numbers cannot
 * produce. Deterministic: re-running writes byte-identical CSV.
 *
 * The candidate x rate grid fans out over common::ThreadPool — every
 * cell is an independent core::servingPointAt call against its
 * candidate's shared cost model — and rows are emitted in flattened
 * index order, so the CSV is byte-identical for every ACS_THREADS
 * value and to the pre-parallel serial loop. `--legacy-sim` reruns
 * the grid on the reference heap-queue/map-memo path (same bytes;
 * CI diffs the two).
 */

#include "bench_util.hh"

#include <memory>

#include "common/thread_pool.hh"

using namespace acs;

int
main(int argc, char **argv)
{
    bench::header("Extension: serving simulation",
                  "Latency-vs-load percentile curves, sanctioned vs "
                  "compliant hardware");
    bench::initObs(argc, argv);

    const core::SanctionsStudy study(
        bench::perfParamsFromArgs(argc, argv));
    // Llama-3 70B on 4 devices: the largest standard workload whose
    // weights fit an 80 GB device at TP=4 with KV headroom (GPT-3
    // 175B needs 87.5 GB/device — the simulator's memory accounting
    // rejects it, unlike the closed-form path).
    core::Workload workload = core::workloadByName("llama70b");
    workload.setting.batch = 32; // reference batch for the cost model

    struct Candidate
    {
        std::string label;
        hw::HardwareConfig config;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"modeled A100", hw::modeledA100()});
    candidates.push_back({"modeled H100", hw::modeledH100()});

    const auto compliant = dse::filterOct2023Unregulated(
        dse::filterReticle(study.runSweep(
            dse::table3Space(2400.0, {500.0 * units::GBPS,
                                      700.0 * units::GBPS,
                                      900.0 * units::GBPS}),
            workload)));
    if (!compliant.empty()) {
        candidates.push_back({"best compliant 2400 TPP",
                              dse::minTbt(compliant).config});
    }

    core::ServingStudyConfig scfg;
    scfg.ratesPerS = {0.25, 0.5, 1.0, 2.0, 4.0};
    scfg.promptLen = sim::LengthDistribution::fixed(512);
    scfg.outputLen = sim::LengthDistribution::uniform(64, 192, 32);
    scfg.horizonS = 300.0;
    scfg.seed = 2026;
    scfg.slo.ttftP99MaxS = 5.0;
    scfg.slo.tbtP99MaxS = 0.300;

    const bool legacy = bench::legacySim(argc, argv);
    if (legacy)
        scfg.scheduler.queueEngine = sim::QueueEngine::LEGACY_HEAP;
    const sim::MemoEngine memo = legacy
                                     ? sim::MemoEngine::LEGACY_MAP
                                     : sim::MemoEngine::FLAT;

    // One shared cost model per candidate: every cell of its row
    // block hits the same read-mostly memo. Heap-held because the
    // model is neither copyable nor movable (it owns a mutex).
    std::vector<std::unique_ptr<sim::IterationCostModel>> costs;
    costs.reserve(candidates.size());
    for (const auto &c : candidates)
        costs.emplace_back(new sim::IterationCostModel(
            study.makeCostModel(c.config, workload, memo)));

    // Flatten the candidate x rate grid into index-addressed cells;
    // collecting them in flattened order below keeps the CSV
    // byte-identical regardless of which worker ran which cell.
    const std::size_t rates = scfg.ratesPerS.size();
    std::vector<core::ServingStudyPoint> cells(candidates.size() *
                                               rates);
    common::ThreadPool::shared().parallelFor(
        cells.size(),
        [&](std::size_t i) {
            cells[i] = core::servingPointAt(
                *costs[i / rates], scfg, scfg.ratesPerS[i % rates]);
        },
        1);

    Table t({"device", "rate_per_s", "completed", "ttft_p50_s",
             "ttft_p95_s", "ttft_p99_s", "tbt_p50_ms", "tbt_p95_ms",
             "tbt_p99_ms", "attainment", "goodput_tok_s",
             "max_queue_depth"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const core::ServingStudyPoint &p = cells[i];
        t.addRow({candidates[i / rates].label, fmt(p.ratePerS, 2),
                  std::to_string(p.completed),
                  fmt(p.ttft.p50S, 4), fmt(p.ttft.p95S, 4),
                  fmt(p.ttft.p99S, 4),
                  fmt(units::toMs(p.tbt.p50S), 3),
                  fmt(units::toMs(p.tbt.p95S), 3),
                  fmt(units::toMs(p.tbt.p99S), 3),
                  fmt(p.attainment, 4),
                  fmt(p.goodputTokensPerS, 1),
                  std::to_string(p.maxQueueDepth)});
    }
    t.print(std::cout);
    bench::writeCsv("ext_serving_sim", t);

    std::cout << "\nShape: at light load every device meets the p99 "
                 "objectives and the curves sit at the analytical "
                 "TTFT/TBT floor. As offered load approaches each "
                 "replica's batched capacity, queueing and prefill "
                 "interference blow up the p99 long before the mean "
                 "moves — and the compliant design, whose prefill the "
                 "TPP cap binds, saturates first. That ordering is the "
                 "request-level sanctions tax.\n";
    return 0;
}
