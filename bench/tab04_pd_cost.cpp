/**
 * @file
 * Table 4: cost of performance-density compliance for 2400-TPP GPT-3
 * designs — the fastest-TTFT PD-compliant design vs the fastest-TTFT
 * non-compliant design, with die cost and 1M-good-dies cost.
 *
 * Paper: 753 mm^2 / PD 3.18 / $134 / $350M vs 523 mm^2 / PD 4.59 /
 * $88 / $177M — similar performance, ~2x manufacturing cost.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Table 4",
                  "PD-compliant vs non-compliant optimal 2400-TPP "
                  "designs (GPT-3 175B)");

    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();

    const dse::SweepSpace space = dse::table3Space(
        2400.0, {500.0 * units::GBPS, 700.0 * units::GBPS,
                 900.0 * units::GBPS});
    const auto designs = study.runSweep(space, workload);
    const auto manufacturable = dse::filterReticle(designs);

    std::vector<dse::EvaluatedDesign> compliant;
    std::vector<dse::EvaluatedDesign> non_compliant;
    for (const auto &d : manufacturable) {
        if (policy::Oct2023Rule::classify(d.toSpec()) ==
            policy::Classification::NOT_APPLICABLE) {
            compliant.push_back(d);
        } else {
            non_compliant.push_back(d);
        }
    }
    std::cout << "manufacturable designs: " << manufacturable.size()
              << " (" << compliant.size() << " PD-compliant, "
              << non_compliant.size() << " regulated)\n\n";

    if (compliant.empty() || non_compliant.empty()) {
        std::cout << "one of the groups is empty; cannot reproduce "
                     "Table 4\n";
        return 1;
    }

    const auto &best_c = dse::minTtft(compliant);

    // The paper's point (Sec. 4.4): a non-compliant design achieves
    // *similar* performance with far less silicon. Pick the smallest
    // non-compliant die within 2% of the compliant optimum's TTFT.
    const dse::EvaluatedDesign *best_n_ptr = nullptr;
    for (const auto &d : non_compliant) {
        if (d.ttftS > best_c.ttftS * 1.02)
            continue;
        if (!best_n_ptr || d.dieAreaMm2 < best_n_ptr->dieAreaMm2)
            best_n_ptr = &d;
    }
    if (!best_n_ptr)
        best_n_ptr = &dse::minTtft(non_compliant);
    const auto &best_n = *best_n_ptr;

    const area::CostModel cost;
    auto million_good = [&](const dse::EvaluatedDesign &d) {
        return cost.costForGoodDiesUsd(d.dieAreaMm2, d.config.process,
                                       1e6) / 1e6;
    };

    Table t({"parameter", "PD compliant", "non-compliant", "paper"});
    t.addRow({"die area (mm^2)", fmt(best_c.dieAreaMm2, 0),
              fmt(best_n.dieAreaMm2, 0), "753 vs 523"});
    t.addRow({"PD", fmt(best_c.perfDensity), fmt(best_n.perfDensity),
              "3.18 vs 4.59"});
    t.addRow({"TTFT (ms)", fmt(units::toMs(best_c.ttftS), 0),
              fmt(units::toMs(best_n.ttftS), 0), "465 vs 470"});
    t.addRow({"TBT (ms)", fmt(units::toMs(best_c.tbtS), 3),
              fmt(units::toMs(best_n.tbtS), 3), "1.062 vs 1.053"});
    t.addRow({"silicon die cost (7nm)", "$" + fmt(best_c.dieCostUsd, 0),
              "$" + fmt(best_n.dieCostUsd, 0), "$134 vs $88"});
    t.addRow({"1M good dies cost (7nm)",
              "$" + fmt(million_good(best_c), 0) + "M",
              "$" + fmt(million_good(best_n), 0) + "M",
              "$350M vs $177M"});
    t.print(std::cout);
    bench::writeCsv("tab04_comparison", t);

    std::cout << "\narea ratio: "
              << fmt(best_c.dieAreaMm2 / best_n.dieAreaMm2, 2)
              << "x (paper: 1.44x); 1M-good-dies cost ratio: "
              << fmt(million_good(best_c) / million_good(best_n), 2)
              << "x (paper: 1.98x)\n";

    std::cout << "\nSRAM comparison (paper: 151 MB vs 52 MB):\n"
              << "  compliant:     L1 "
              << fmt(best_c.config.l1BytesPerCore / units::KIB, 0)
              << " KiB x " << best_c.config.coreCount << " cores + L2 "
              << fmt(best_c.config.l2Bytes / units::MIB, 0) << " MiB = "
              << fmt((best_c.config.l1BytesPerCore *
                      best_c.config.coreCount + best_c.config.l2Bytes) /
                     units::MIB, 0) << " MiB\n"
              << "  non-compliant: L1 "
              << fmt(best_n.config.l1BytesPerCore / units::KIB, 0)
              << " KiB x " << best_n.config.coreCount << " cores + L2 "
              << fmt(best_n.config.l2Bytes / units::MIB, 0) << " MiB = "
              << fmt((best_n.config.l1BytesPerCore *
                      best_n.config.coreCount + best_n.config.l2Bytes) /
                     units::MIB, 0) << " MiB\n";
    return 0;
}
