/**
 * @file
 * Extension bench (Sec. 2.1): the December 2024 HBM export control.
 *
 * Classifies commodity HBM generations by memory bandwidth density
 * (package bandwidth / package area) and shows where the 2.0 and 3.3
 * GB/s/mm^2 thresholds fall across HBM2 -> HBM3E.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: Dec 2024 HBM rule",
                  "Memory-bandwidth-density classification of "
                  "commodity HBM packages");

    // Public per-stack figures: bandwidth (GB/s) and package footprint
    // (mm^2, ~11x10 mm die-stack footprint across generations).
    const policy::HbmPackageSpec packages[] = {
        {"HBM2 (4-Hi, 1.6 Gbps)", 205.0, 110.0},
        {"HBM2 (8-Hi, 2.0 Gbps)", 256.0, 110.0},
        {"HBM2E (8-Hi, 3.6 Gbps)", 460.0, 110.0},
        {"HBM3 (8-Hi, 6.4 Gbps)", 819.0, 110.0},
        {"HBM3E (8-Hi, 9.2 Gbps)", 1178.0, 110.0},
        {"HBM3E (12-Hi, 9.8 Gbps)", 1254.0, 110.0},
    };

    Table t({"package", "BW (GB/s)", "area (mm^2)",
             "density (GB/s/mm^2)", "classification"});
    ScatterPlot plot("HBM bandwidth density vs thresholds",
                     "Package area (mm^2)", "Bandwidth (GB/s)");
    ScatterSeries na{"not applicable", '.', {}, {}};
    ScatterSeries exc{"exception eligible", 'o', {}, {}};
    ScatterSeries lic{"license required", 'X', {}, {}};

    for (const auto &pkg : packages) {
        const auto c = policy::Dec2024HbmRule::classify(pkg);
        t.addRow({pkg.name, fmt(pkg.bandwidthGBps, 0),
                  fmt(pkg.packageAreaMm2, 0),
                  fmt(pkg.bandwidthDensity()), toString(c)});
        ScatterSeries *series =
            c == policy::Classification::NOT_APPLICABLE ? &na
            : c == policy::Classification::NAC_ELIGIBLE ? &exc
                                                        : &lic;
        series->xs.push_back(pkg.packageAreaMm2);
        series->ys.push_back(pkg.bandwidthGBps);
    }
    t.print(std::cout);
    plot.addSeries(na);
    plot.addSeries(exc);
    plot.addSeries(lic);
    plot.print(std::cout);

    std::cout << "\nShape: HBM2-class packages escape the rule, "
                 "HBM2E sits in the license-exception band, and every "
                 "HBM3/HBM3E package requires a license — the rule "
                 "tracks exactly the memory the decode-bound LLM "
                 "workloads need (Sec. 5.4).\n";

    // Device-integrated HBM is exempt; show the boundary case.
    std::cout << "\nNote: the rule applies to commodity packages "
                 "only; HBM installed in a device before export is "
                 "regulated through the device-level ACR instead.\n";
    return 0;
}
