/**
 * @file
 * Extension bench: the "sanctions tax" on an inference provider
 * (quantifying the Sec. 2.4 supply-reduction argument).
 *
 * Compare serving GPT-3-class demand on (a) the modeled A100, (b) the
 * best Oct-2023-compliant 2400-TPP design, and (c) the best compliant
 * 1600-TPP design: devices required, silicon spend, and the power
 * bill for the same aggregate token demand.
 *
 * A second table re-prices each fleet with the request-level simulator
 * (serve::planFleetPercentile): the smallest fleet whose *simulated*
 * p99 TTFT/TBT meet the objectives under Poisson arrivals, next to the
 * steady-state answer — the burst tax on top of the sanctions tax.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Extension: serving tax",
                  "Fleet size and cost to serve fixed demand on "
                  "sanctioned vs compliant hardware");

    const core::SanctionsStudy study;
    const core::Workload workload = core::gpt3Workload();
    const serve::Slo slo{30.0, 0.300}; // interactive TTFT objective
    const double demand = 1e6;         // tokens/second aggregate

    struct Candidate
    {
        std::string label;
        dse::EvaluatedDesign design;
    };
    std::vector<Candidate> candidates;
    candidates.push_back(
        {"modeled A100 (sanctioned)",
         study.evaluateBaseline(workload)});

    for (double tpp : {2400.0, 1600.0}) {
        const auto compliant = dse::filterOct2023Unregulated(
            dse::filterReticle(study.runSweep(
                dse::table3Space(tpp, {500.0 * units::GBPS,
                                       700.0 * units::GBPS,
                                       900.0 * units::GBPS}),
                workload)));
        if (compliant.empty())
            continue;
        candidates.push_back(
            {"best compliant " + fmt(tpp, 0) + " TPP",
             dse::minTbt(compliant)});
    }

    const area::PowerModel power_model;
    const area::ActivityProfile serving{0.35, 0.6, 4.0};

    Table t({"building block", "tok/s per device", "TTFT (s)",
             "meets SLO", "devices", "fleet silicon ($M)",
             "fleet power (MW)", "vs A100 devices"});
    long a100_devices = 0;
    for (const auto &c : candidates) {
        const perf::InferenceSimulator sim(c.design.config);
        const auto result =
            sim.run(workload.model, workload.setting, workload.system);
        const auto estimate = serve::estimateServing(
            result, workload.system.tensorParallel, slo);
        const auto plan = serve::planFleet(
            estimate, workload.system.tensorParallel, demand);
        if (a100_devices == 0)
            a100_devices = plan.devices;

        const double silicon =
            plan.devices * c.design.goodDieCostUsd / 1e6;
        const double watts =
            plan.devices *
            power_model.power(c.design.config, serving).totalW() / 1e6;
        t.addRow({c.label,
                  fmt(estimate.tokensPerSecondPerDevice, 0),
                  fmt(estimate.ttftS, 1),
                  plan.feasible ? "yes" : "NO (TTFT)",
                  std::to_string(plan.devices), fmt(silicon, 1),
                  fmt(watts, 1),
                  fmt(static_cast<double>(plan.devices) / a100_devices,
                      2) + "x"});
    }
    t.print(std::cout);
    bench::writeCsv("ext_serving_tax", t);

    // -- request-level cross-check -------------------------------------
    // The simulator accounts per-device memory, and GPT-3 175B needs
    // 87.5 GB of weights per device at TP=4 — more HBM than any
    // candidate has. Re-map the same workload to TP=8 (the smallest
    // system that physically holds the model) and size each fleet
    // against p99 objectives under Poisson load, with the closed-form
    // plan for the identical demand as the cross-check.
    core::Workload sim_workload = workload;
    sim_workload.system.tensorParallel = 8;

    sim::FleetDemand fleet_demand;
    const double mean_output = 256.0;
    fleet_demand.ratePerS = 2000.0 / mean_output; // ~2 k tokens/s
    fleet_demand.promptLen = sim::LengthDistribution::fixed(2048);
    fleet_demand.outputLen =
        sim::LengthDistribution::fixed(static_cast<int>(mean_output));
    fleet_demand.horizonS = 300.0;
    fleet_demand.seed = 2026;

    serve::PercentileSlo pslo;
    pslo.ttftP99MaxS = 10.0;
    pslo.tbtP99MaxS = 1.0; // prefill stalls land in the TBT gaps

    Table sims({"building block", "closed-form devices",
                "simulated devices", "burst factor", "probes",
                "sim TTFT p99 (s)", "sim TBT p99 (ms)"});
    for (const auto &c : candidates) {
        const sim::IterationCostModel cost(
            c.design.config, sim_workload.model, sim_workload.setting,
            sim_workload.system);
        const serve::PercentileFleetPlan plan =
            serve::planFleetPercentile(cost, fleet_demand,
                                       sim::SchedulerConfig{}, pslo,
                                       512);
        const auto &agg = plan.simulated.aggregate;
        sims.addRow(
            {c.label, std::to_string(plan.closedFormDevices),
             plan.simulated.feasible
                 ? std::to_string(plan.simulated.devices)
                 : "infeasible",
             plan.burstFactor() > 0.0 ? fmt(plan.burstFactor(), 2) + "x"
                                      : "-",
             std::to_string(plan.simulated.probes),
             fmt(agg.ttft().p99S, 2),
             fmt(units::toMs(agg.tbt().p99S), 0)});
    }
    sims.print(std::cout);
    bench::writeCsv("ext_serving_tax_sim", sims);

    std::cout << "\nShape: compliant designs can match — even beat — "
                 "offline decode throughput because memory bandwidth "
                 "is unregulated (Sec. 4.3), but they cannot meet "
                 "interactive TTFT objectives: the sanction binds "
                 "exactly the prefill phase the rule targets, and the "
                 "provider pays in latency rather than raw token "
                 "throughput.\n";
    return 0;
}
