/**
 * @file
 * Figure 1a: device classification under the October 2022 Advanced
 * Computing Rule, plotted as TPP vs device-device bandwidth.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Figure 1a",
                  "Device classification under October 2022 ACR "
                  "(TPP vs device bandwidth)");

    const devices::Database db;
    const auto specs = db.allSpecs();
    const auto buckets =
        bench::classifyAll<policy::Oct2022Rule>(specs);

    ScatterPlot plot("Oct 2022 ACR classification",
                     "Device-Device Bandwidth (GB/s)",
                     "Total Processing Performance (TPP)");
    auto series = [](const std::vector<policy::DeviceSpec> &specs,
                     const std::string &name, char glyph) {
        ScatterSeries s;
        s.name = name;
        s.glyph = glyph;
        for (const auto &spec : specs) {
            s.xs.push_back(spec.deviceBandwidthGBps);
            s.ys.push_back(spec.tpp);
        }
        return s;
    };
    plot.addSeries(series(buckets.notApplicable, "Not Applicable", '.'));
    plot.addSeries(series(buckets.licenseRequired, "License Required",
                          'X'));
    plot.print(std::cout);

    Table t({"device", "TPP", "device BW (GB/s)", "classification"});
    for (const auto &spec : specs) {
        t.addRow({spec.name, fmt(spec.tpp, 0),
                  fmt(spec.deviceBandwidthGBps, 0),
                  toString(policy::Oct2022Rule::classify(spec))});
    }
    t.print(std::cout);
    bench::writeCsv("fig01a_devices", t);

    std::cout << "\nSummary: " << buckets.licenseRequired.size()
              << " of " << specs.size()
              << " devices require a license under Oct 2022 (paper: "
              << "only flagship parts like H100/A100/MI250X).\n";
    return 0;
}
