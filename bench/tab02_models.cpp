/**
 * @file
 * Table 2: the evaluated model architectures, rendered from the
 * implemented presets, plus the derived per-layer working sets the
 * performance analysis rests on.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Table 2", "Model architectures");

    const model::TransformerConfig models[] = {
        model::gpt3_175b(), model::llama3_8b(), model::llama3_70b(),
        model::mixtral_8x7b()};

    Table t({"parameter", "GPT-3 175B", "Llama 3 8B",
             "Llama 3 70B (ext)", "Mixtral 8x7B (ext)"});
    auto row = [&](const std::string &label, auto getter) {
        std::vector<std::string> cells{label};
        for (const auto &m : models)
            cells.push_back(getter(m));
        t.addRow(cells);
    };
    row("number of layers", [](const auto &m) {
        return std::to_string(m.numLayers);
    });
    row("model dimension", [](const auto &m) {
        return std::to_string(m.modelDim);
    });
    row("FFN dimension", [](const auto &m) {
        return std::to_string(m.ffnDim);
    });
    row("attention heads", [](const auto &m) {
        return std::to_string(m.numHeads);
    });
    row("K/V heads", [](const auto &m) {
        return std::to_string(m.numKvHeads);
    });
    row("activation", [](const auto &m) {
        return toString(m.activation);
    });
    row("experts (top-k)", [](const auto &m) {
        return m.isMoe() ? std::to_string(m.numExperts) + " (top-" +
                               std::to_string(m.expertsPerToken) + ")"
                         : "-";
    });
    row("params (B, no embed)", [](const auto &m) {
        return fmt(static_cast<double>(m.totalParams()) / 1e9, 1);
    });
    t.print(std::cout);
    bench::writeCsv("tab02_models", t);

    // Derived per-layer working sets at the standard setting (TP=4).
    std::cout << "\nPer-layer working sets (batch 32, input 2048, "
                 "TP=4, FP16):\n";
    const model::InferenceSetting setting;
    Table w({"model", "weights/device (MB)",
             "KV cache/device @2560 (MB)", "prefill GFLOPs/device"});
    for (const auto &m : models) {
        const auto g = model::buildPrefillGraph(m, setting, 4);
        w.addRow({m.name, fmt(g.totalWeightBytes() / 1e6, 0),
                  fmt(model::kvCacheBytesPerLayer(m, setting, 2560, 4) /
                      1e6, 0),
                  fmt(g.totalFlops() / 1e9, 0)});
    }
    w.print(std::cout);
    return 0;
}
