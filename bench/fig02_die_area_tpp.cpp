/**
 * @file
 * Figure 2: the October 2023 rule re-plotted as die area vs TPP — the
 * performance-density floors become die-area floors, so devices can
 * escape the rule by *increasing* die area.
 */

#include "bench_util.hh"

using namespace acs;

int
main()
{
    bench::header("Figure 2",
                  "Die area vs TPP under October 2023 ACR: devices can "
                  "avoid regulation by increasing die area");

    const devices::Database db;
    const auto specs = db.allSpecs();
    const auto buckets =
        bench::classifyAll<policy::Oct2023Rule>(specs);

    ScatterPlot plot("Oct 2023 ACR classification by die area",
                     "Die Area (mm^2)",
                     "Total Processing Performance (TPP)");
    plot.setLimits({std::nullopt, 1500.0, std::nullopt, 7000.0});
    auto series = [](const std::vector<policy::DeviceSpec> &specs,
                     const std::string &name, char glyph) {
        ScatterSeries s;
        s.name = name;
        s.glyph = glyph;
        for (const auto &spec : specs) {
            s.xs.push_back(spec.dieAreaMm2);
            s.ys.push_back(spec.tpp);
        }
        return s;
    };
    plot.addSeries(series(buckets.notApplicable, "Not Applicable", '.'));
    plot.addSeries(series(buckets.nacEligible, "NAC Eligible", 'o'));
    plot.addSeries(series(buckets.licenseRequired, "License Required",
                          'X'));
    plot.print(std::cout);

    // The paper's worked examples of the die-area floors (Sec. 2.5).
    Table t({"TPP", "min area: unregulated (mm^2)",
             "min area: NAC eligible (mm^2)", "paper"});
    t.addRow({"2399", fmt(policy::Oct2023Rule::minUnregulatedDieArea(
                              2399.0), 1),
              fmt(policy::Oct2023Rule::minNacDieArea(2399.0), 1),
              "> 750 mm^2 to avoid restrictions"});
    t.addRow({"1600", fmt(policy::Oct2023Rule::minUnregulatedDieArea(
                              1600.0), 1),
              fmt(policy::Oct2023Rule::minNacDieArea(1600.0), 1),
              "> 270 mm^2 for NAC eligibility"});
    t.addRow({"4799", fmt(policy::Oct2023Rule::minUnregulatedDieArea(
                              4799.0), 1),
              fmt(policy::Oct2023Rule::minNacDieArea(4799.0), 1),
              "> 3000 mm^2 (3x the reticle limit)"});
    t.print(std::cout);
    bench::writeCsv("fig02_area_floors", t);

    std::cout << "\nA 4799-TPP unregulated design needs "
              << fmt(policy::Oct2023Rule::minUnregulatedDieArea(4799.0) /
                     area::RETICLE_LIMIT_MM2, 2)
              << "x the " << area::RETICLE_LIMIT_MM2
              << " mm^2 reticle limit -> must be a multi-chip module.\n";
    return 0;
}
