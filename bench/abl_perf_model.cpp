/**
 * @file
 * Ablation bench: how each performance-model ingredient (pipeline
 * fill, L1 tiling, L2 blocking, kernel overhead) contributes to the
 * modeled A100's TTFT/TBT and to the headline DSE deltas — the
 * modeling-choice ablations DESIGN.md calls out.
 */

#include "bench_util.hh"

using namespace acs;

namespace {

void
runVariant(const std::string &label, const perf::PerfParams &params)
{
    const core::SanctionsStudy study(params);

    Table t({"workload", "A100 TTFT (ms)", "A100 TBT (ms)",
             "best compliant dTTFT", "best compliant dTBT"});
    for (const core::Workload &workload :
         {core::gpt3Workload(), core::llamaWorkload()}) {
        const auto baseline = study.evaluateBaseline(workload);
        const auto designs = dse::filterReticle(study.runSweep(
            dse::table3Space(4800.0, {600.0 * units::GBPS}), workload));
        const auto &best_ttft = dse::minTtft(designs);
        const auto &best_tbt = dse::minTbt(designs);
        t.addRow({workload.model.name,
                  fmt(units::toMs(baseline.ttftS), 1),
                  fmt(units::toMs(baseline.tbtS), 4),
                  fmtPercent(best_ttft.ttftS / baseline.ttftS - 1.0),
                  fmtPercent(best_tbt.tbtS / baseline.tbtS - 1.0)});
    }
    std::cout << "\n-- " << label << " --\n";
    t.print(std::cout);
}

} // anonymous namespace

int
main()
{
    bench::header("Ablation",
                  "Performance-model ingredient ablations");

    runVariant("full model (defaults)", perf::PerfParams{});

    perf::PerfParams no_fill;
    no_fill.modelPipelineFill = false;
    runVariant("no systolic pipeline-fill loss", no_fill);

    perf::PerfParams no_tiling;
    no_tiling.modelTiling = false;
    runVariant("no L1-capacity tiling (infinite tiles)", no_tiling);

    perf::PerfParams no_blocking;
    no_blocking.modelL2Blocking = false;
    runVariant("no L2 GEMM blocking (stream weights once)",
               no_blocking);

    perf::PerfParams no_overhead;
    no_overhead.kernelOverheadS = 0.0;
    runVariant("no kernel launch/ramp overhead", no_overhead);

    perf::PerfParams tile_sim;
    tile_sim.gemmMode = perf::GemmMode::TILE_SIM;
    runVariant("wave-level GEMM simulation (detailed mode)", tile_sim);

    perf::PerfParams multipass;
    multipass.modelMultiPassVector = true;
    runVariant("multi-pass (unfused) vector kernels", multipass);

    std::cout << "\nReading: without tiling, L1 size stops mattering "
                 "and TTFT deltas collapse; without kernel overhead, "
                 "decode scales perfectly with HBM bandwidth and TBT "
                 "deltas overshoot the paper's -27%.\n";
    return 0;
}
